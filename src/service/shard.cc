#include "service/shard.hh"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "common/logging.hh"
#include "core/order_spec.hh"
#include "service/cpu_pin.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

namespace pmdb
{

namespace
{

/** Shard-path metrics, resolved once; touched per task, not per
 *  event. Histograms merge across shards deterministically. */
struct ShardMetrics
{
    telemetry::Histogram &queueWaitNs = telemetry::Registry::global()
        .histogram("pmdbd.shard.queue_wait_ns");
    telemetry::Histogram &evalNs = telemetry::Registry::global()
        .histogram("pmdbd.shard.eval_ns");
    telemetry::Histogram &verdictNs = telemetry::Registry::global()
        .histogram("pmdbd.shard.verdict_ns");
    telemetry::Counter &tasks =
        telemetry::Registry::global().counter("pmdbd.shard.tasks");

    static ShardMetrics &
    get()
    {
        static ShardMetrics instance;
        return instance;
    }
};

/** Events routed by address; everything else is broadcast. */
bool
isAddressed(EventKind kind)
{
    return kind == EventKind::Store || kind == EventKind::Load ||
           kind == EventKind::Flush || kind == EventKind::TxLog;
}

void
mergeStats(DebuggerStats *total, const DebuggerStats &part)
{
    // Addressed work is partitioned across shards: sum it. Boundary
    // events are broadcast, so every shard counts each fence/epoch —
    // take the max, which equals the true count.
    total->stores += part.stores;
    total->flushes += part.flushes;
    total->fences = std::max(total->fences, part.fences);
    total->epochs = std::max(total->epochs, part.epochs);
    total->treeNodeSampleSum += part.treeNodeSampleSum;
    total->treeNodeSamples += part.treeNodeSamples;
    total->tree.insertions += part.tree.insertions;
    total->tree.removals += part.tree.removals;
    total->tree.reorganizations += part.tree.reorganizations;
    total->tree.merges += part.tree.merges;
    total->array.collectiveInvalidations +=
        part.array.collectiveInvalidations;
    total->array.recordsCollectivelyFreed +=
        part.array.recordsCollectivelyFreed;
    total->array.recordsMovedToTree += part.array.recordsMovedToTree;
    total->array.recordsDroppedIndividually +=
        part.array.recordsDroppedIndividually;
    total->array.overflowStores += part.array.overflowStores;
    total->array.maxUsage =
        std::max(total->array.maxUsage, part.array.maxUsage);
}

} // namespace

/** Rendezvous for closeSession: shards deposit results into their own
 *  slot; the last one to finish merges and runs the completion. */
struct ShardPool::CloseState
{
    std::atomic<std::size_t> remaining{0};
    std::vector<std::vector<BugReport>> bugs;
    std::vector<DebuggerStats> stats;
    std::vector<BugReport> external;
    SessionId session = 0;
    std::size_t home = 0;
    std::function<void(SessionVerdict &&)> done;
};

struct ShardPool::Task
{
    enum class Kind
    {
        Open,
        Name,
        Events,
        Close,
    };

    Kind kind = Kind::Events;
    /** Enqueue stamp for the queue-wait telemetry stage (0 = off). */
    std::uint64_t enqueuedNs = 0;
    /** Open */
    DebuggerConfig config;
    /** Name */
    std::uint32_t nameId = 0;
    std::string name;
    /** Events */
    std::vector<Event> events;
    /** Close */
    std::shared_ptr<CloseState> close;
};

/**
 * One (session, shard) pair: its FIFO task queue plus the detector
 * state any leasing worker drives. The queue/lease fields are guarded
 * by the pool's queuesMutex_; the detector state is touched only by
 * the worker holding the lease.
 */
struct ShardPool::SessionShard
{
    SessionId session = 0;
    std::size_t shard = 0;

    /** @name guarded by queuesMutex_ */
    /** @{ */
    std::deque<Task> queue;
    /** Queued Events tasks (the bounded part of the queue). */
    std::size_t eventsTasks = 0;
    bool leased = false;
    bool ready = false;
    bool closed = false;
    /** @} */

    /** @name leased-worker state (heap-stable NameTable address). */
    /** @{ */
    NameTable names;
    std::unique_ptr<PmDebugger> debugger;
    /** @} */
};

ShardPool::ShardPool(ShardPoolConfig config)
    : config_(config)
{
    if (!config_.shards)
        config_.shards = 1;
    if (!config_.stripeBytes)
        config_.stripeBytes = 64ull << 20;
    if (!config_.queueCapacity)
        config_.queueCapacity = 1;
    ready_.resize(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i)
        counters_.push_back(std::make_unique<Counters>());
}

ShardPool::~ShardPool()
{
    stop();
}

void
ShardPool::start()
{
    if (running_)
        return;
    running_ = true;
    stopping_ = false;
    for (std::size_t i = 0; i < config_.shards; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
        if (config_.pinCores) {
            pinThreadToCore(workers_.back(),
                            config_.pinBase + i);
        }
    }
}

void
ShardPool::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(queuesMutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
    running_ = false;
}

std::size_t
ShardPool::homeShard(SessionId session) const
{
    return session % config_.shards;
}

std::size_t
ShardPool::shardOf(SessionId session, Addr addr) const
{
    const Addr stripe = addr / config_.stripeBytes;
    return static_cast<std::size_t>((stripe + session) %
                                    config_.shards);
}

ShardPool::SessionShard *
ShardPool::queueOf(SessionId session, std::size_t shard)
{
    const std::uint64_t key =
        static_cast<std::uint64_t>(session) * config_.shards + shard;
    const auto it = queues_.find(key);
    return it == queues_.end() ? nullptr : it->second.get();
}

void
ShardPool::markReadyLocked(SessionShard &queue)
{
    if (!queue.ready && !queue.leased && !queue.queue.empty()) {
        queue.ready = true;
        ready_[queue.shard].push_back(&queue);
        wake_.notify_one();
    }
}

void
ShardPool::enqueueLocked(SessionShard &queue, Task task)
{
    if (task.kind == Task::Kind::Events)
        ++queue.eventsTasks;
    if (telemetry::enabled()) {
        task.enqueuedNs = telemetry::nowNs();
        counters_[queue.shard]->queueDepth.fetch_add(
            1, std::memory_order_relaxed);
    }
    queue.queue.push_back(std::move(task));
    markReadyLocked(queue);
}

void
ShardPool::openSession(SessionId session, const DebuggerConfig &config,
                       bool pinned)
{
    {
        std::lock_guard<std::mutex> lock(pinnedMutex_);
        pinned_[session] = pinned;
    }
    const std::size_t home = homeShard(session);
    std::lock_guard<std::mutex> lock(queuesMutex_);
    for (std::size_t shard = 0; shard < config_.shards; ++shard) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(session) * config_.shards +
            shard;
        auto entry = std::make_unique<SessionShard>();
        entry->session = session;
        entry->shard = shard;
        Task task;
        task.kind = Task::Kind::Open;
        task.config = config;
        // Context-only rules fire on broadcast boundaries alone, so
        // every shard would report the same bug; keep them on the home
        // shard only to preserve single-detector report identity.
        if (shard != home)
            task.config.detectRedundantEpochFence = false;
        enqueueLocked(*entry, std::move(task));
        queues_[key] = std::move(entry);
    }
}

void
ShardPool::internName(SessionId session, std::uint32_t nameId,
                      std::string name)
{
    std::lock_guard<std::mutex> lock(queuesMutex_);
    for (std::size_t shard = 0; shard < config_.shards; ++shard) {
        SessionShard *queue = queueOf(session, shard);
        if (!queue)
            continue;
        Task task;
        task.kind = Task::Kind::Name;
        task.nameId = nameId;
        task.name = name;
        enqueueLocked(*queue, std::move(task));
    }
}

bool
ShardPool::tryRouteEvents(SessionId session, const Event *events,
                          std::size_t count, PendingRoute *overflow)
{
    bool pinned = false;
    {
        std::lock_guard<std::mutex> lock(pinnedMutex_);
        const auto it = pinned_.find(session);
        pinned = it != pinned_.end() && it->second;
    }

    // Partition into per-shard subsequences. Relative order within a
    // shard matches stream order because events are appended in order.
    std::vector<std::vector<Event>> parts(config_.shards);
    for (std::size_t i = 0; i < count; ++i) {
        const Event &event = events[i];
        if (pinned) {
            parts[homeShard(session)].push_back(event);
        } else if (isAddressed(event.kind)) {
            const std::size_t shard = shardOf(session, event.addr);
            if (event.size &&
                shardOf(session, event.addr + event.size - 1) != shard) {
                straddles_.fetch_add(1, std::memory_order_relaxed);
            }
            parts[shard].push_back(event);
        } else {
            for (auto &part : parts)
                part.push_back(event);
        }
    }

    std::lock_guard<std::mutex> lock(queuesMutex_);
    for (std::size_t shard = 0; shard < parts.size(); ++shard) {
        if (parts[shard].empty())
            continue;
        SessionShard *queue = queueOf(session, shard);
        if (!queue || queue->closed)
            continue;
        if (queue->eventsTasks >= config_.queueCapacity) {
            if (overflow) {
                overflow->parts.emplace_back(
                    shard, std::move(parts[shard]));
            }
            continue;
        }
        Task task;
        task.kind = Task::Kind::Events;
        task.events = std::move(parts[shard]);
        enqueueLocked(*queue, std::move(task));
    }
    return !overflow || overflow->empty();
}

bool
ShardPool::tryFlushPending(SessionId session, PendingRoute *overflow)
{
    if (!overflow || overflow->empty())
        return true;
    std::lock_guard<std::mutex> lock(queuesMutex_);
    auto &parts = overflow->parts;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        SessionShard *queue = queueOf(session, parts[i].first);
        if (queue && !queue->closed &&
            queue->eventsTasks >= config_.queueCapacity) {
            // Still blocked: compact in place. Guard the self-move —
            // moving a vector onto itself leaves it empty.
            if (kept != i)
                parts[kept] = std::move(parts[i]);
            ++kept;
            continue;
        }
        if (queue && !queue->closed) {
            Task task;
            task.kind = Task::Kind::Events;
            task.events = std::move(parts[i].second);
            enqueueLocked(*queue, std::move(task));
        }
    }
    parts.resize(kept);
    return parts.empty();
}

void
ShardPool::routeEvents(SessionId session, const Event *events,
                       std::size_t count)
{
    PendingRoute overflow;
    if (tryRouteEvents(session, events, count, &overflow))
        return;
    // Backpressure: the workers are behind. Yield first so they get
    // the core on a 1-CPU host, then back off gently.
    int spins = 0;
    while (!tryFlushPending(session, &overflow)) {
        if (++spins < 16) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        }
    }
}

void
ShardPool::closeSessionAsync(
    SessionId session, std::vector<BugReport> external,
    std::function<void(SessionVerdict &&)> done)
{
    {
        std::lock_guard<std::mutex> lock(pinnedMutex_);
        pinned_.erase(session);
    }
    auto close = std::make_shared<CloseState>();
    close->remaining.store(config_.shards, std::memory_order_relaxed);
    close->bugs.resize(config_.shards);
    close->stats.resize(config_.shards);
    close->external = std::move(external);
    close->session = session;
    close->home = homeShard(session);
    close->done = std::move(done);

    std::size_t missing = 0;
    {
        std::lock_guard<std::mutex> lock(queuesMutex_);
        for (std::size_t shard = 0; shard < config_.shards; ++shard) {
            SessionShard *queue = queueOf(session, shard);
            if (!queue) {
                ++missing; // unknown shard: counts as already done
                continue;
            }
            Task task;
            task.kind = Task::Kind::Close;
            task.close = close;
            enqueueLocked(*queue, std::move(task));
        }
    }
    // Settle missing shards outside the pool lock — if every shard was
    // missing, the completion runs right here on the caller's thread.
    if (missing &&
        close->remaining.fetch_sub(missing,
                                   std::memory_order_acq_rel) ==
            missing) {
        mergeAndFinish(*close);
    }
}

SessionVerdict
ShardPool::closeSession(SessionId session,
                        const std::vector<BugReport> &external)
{
    std::promise<SessionVerdict> promise;
    std::future<SessionVerdict> future = promise.get_future();
    closeSessionAsync(session, external,
                      [&promise](SessionVerdict &&verdict) {
                          promise.set_value(std::move(verdict));
                      });
    return future.get();
}

void
ShardPool::mergeAndFinish(CloseState &close)
{
    const bool telemetryOn = telemetry::enabled();
    const std::uint64_t start = telemetryOn ? telemetry::nowNs() : 0;
    telemetry::SpanTimer span("session.verdict", "pmdbd",
                              close.session);
    // Merge: home shard first so that, at equal seq, its chronological
    // ordering wins; client-reported external bugs come last at equal
    // seq (in-process detection reports at an event before a manual
    // cross-failure check stamped with the same sequence number).
    std::vector<BugReport> merged;
    for (const BugReport &bug : close.bugs[close.home])
        merged.push_back(bug);
    for (std::size_t shard = 0; shard < close.bugs.size(); ++shard) {
        if (shard == close.home)
            continue;
        for (const BugReport &bug : close.bugs[shard])
            merged.push_back(bug);
    }
    for (const BugReport &bug : close.external)
        merged.push_back(bug);
    std::stable_sort(merged.begin(), merged.end(),
                     [](const BugReport &a, const BugReport &b) {
                         return a.seq < b.seq;
                     });

    SessionVerdict verdict;
    BugCollector collector;
    for (const BugReport &bug : merged) {
        if (collector.report(bug))
            verdict.bugs.push_back(bug);
    }
    for (const DebuggerStats &part : close.stats)
        mergeStats(&verdict.stats, part);
    if (telemetryOn) {
        ShardMetrics::get().verdictNs.record(telemetry::nowNs() -
                                             start);
    }
    if (close.done)
        close.done(std::move(verdict));
}

std::uint64_t
ShardPool::straddleCount() const
{
    return straddles_.load(std::memory_order_relaxed);
}

std::vector<ShardStats>
ShardPool::shardStats() const
{
    std::vector<ShardStats> stats(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
        stats[i].batches =
            counters_[i]->batches.load(std::memory_order_relaxed);
        stats[i].events =
            counters_[i]->events.load(std::memory_order_relaxed);
        stats[i].steals =
            counters_[i]->steals.load(std::memory_order_relaxed);
        stats[i].queueDepth =
            counters_[i]->queueDepth.load(std::memory_order_relaxed);
    }
    return stats;
}

std::uint64_t
ShardPool::stealCount() const
{
    std::uint64_t total = 0;
    for (const auto &counter : counters_)
        total += counter->steals.load(std::memory_order_relaxed);
    return total;
}

void
ShardPool::runTask(SessionShard &queue, Task &task)
{
    Counters &counters = *counters_[queue.shard];
    const bool telemetryOn = telemetry::enabled();
    if (telemetryOn) {
        ShardMetrics &metrics = ShardMetrics::get();
        metrics.tasks.add(1);
        if (task.enqueuedNs) {
            const std::uint64_t wait =
                telemetry::nowNs() - task.enqueuedNs;
            metrics.queueWaitNs.record(wait);
            if (telemetry::spansEnabled() &&
                task.kind == Task::Kind::Events) {
                telemetry::Span span;
                span.name = "shard.queue_wait";
                span.category = "pmdbd";
                span.startNs = task.enqueuedNs;
                span.durNs = wait;
                span.track = queue.session;
                telemetry::SpanBuffer::global().record(
                    std::move(span));
            }
        }
    }
    switch (task.kind) {
      case Task::Kind::Open:
        queue.debugger = std::make_unique<PmDebugger>(task.config);
        queue.debugger->attached(queue.names);
        break;
      case Task::Kind::Name: {
        const std::uint32_t id = queue.names.intern(task.name);
        if (id != task.nameId) {
            warn("pmdbd/shard", "name id mismatch (got " +
                 std::to_string(id) + ", expected " +
                 std::to_string(task.nameId) + ")");
        }
        break;
      }
      case Task::Kind::Events: {
        if (queue.shard == config_.slowShard &&
            config_.slowShardDelayUs) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                config_.slowShardDelayUs));
        }
        if (queue.debugger) {
            telemetry::SpanTimer span(
                "shard.rule_eval", "pmdbd", queue.session,
                "events=" + std::to_string(task.events.size()));
            const std::uint64_t start =
                telemetryOn ? telemetry::nowNs() : 0;
            queue.debugger->handleBatch(task.events.data(),
                                        task.events.size());
            if (telemetryOn) {
                ShardMetrics::get().evalNs.record(telemetry::nowNs() -
                                                  start);
            }
        }
        counters.batches.fetch_add(1, std::memory_order_relaxed);
        counters.events.fetch_add(task.events.size(),
                                  std::memory_order_relaxed);
        break;
      }
      case Task::Kind::Close: {
        std::vector<BugReport> bugs;
        DebuggerStats stats;
        if (queue.debugger) {
            queue.debugger->finalize();
            bugs = queue.debugger->bugs().bugs();
            stats = queue.debugger->stats();
            queue.debugger.reset();
        }
        CloseState &close = *task.close;
        close.bugs[queue.shard] = std::move(bugs);
        close.stats[queue.shard] = stats;
        if (close.remaining.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            mergeAndFinish(close);
        }
        break;
      }
    }
}

void
ShardPool::workerLoop(std::size_t index)
{
    std::unique_lock<std::mutex> lock(queuesMutex_);
    const auto anyReady = [&]() -> SessionShard * {
        if (!ready_[index].empty()) {
            SessionShard *queue = ready_[index].front();
            ready_[index].pop_front();
            return queue;
        }
        // Idle: steal a ready queue of another shard. Any worker can
        // serve any queue — each carries its own detector state.
        for (std::size_t step = 1; step < config_.shards; ++step) {
            const std::size_t other =
                (index + step) % config_.shards;
            if (!ready_[other].empty()) {
                SessionShard *queue = ready_[other].front();
                ready_[other].pop_front();
                counters_[queue->shard]->steals.fetch_add(
                    1, std::memory_order_relaxed);
                return queue;
            }
        }
        return nullptr;
    };

    for (;;) {
        SessionShard *queue = anyReady();
        if (!queue) {
            if (stopping_)
                return;
            wake_.wait(lock);
            continue;
        }

        // Lease the queue and take its whole backlog: exclusivity
        // keeps per-(session,shard) order, coarse granularity keeps
        // the lock off the per-event path.
        queue->ready = false;
        queue->leased = true;
        std::deque<Task> taken;
        taken.swap(queue->queue);
        queue->eventsTasks = 0;
        // Only stamped tasks bumped the depth (the counter and the
        // stamp are set together), so the decrement can never
        // underflow if telemetry was toggled mid-run.
        std::uint64_t stamped = 0;
        for (const Task &task : taken)
            stamped += task.enqueuedNs != 0;
        if (stamped) {
            counters_[queue->shard]->queueDepth.fetch_sub(
                stamped, std::memory_order_relaxed);
        }
        lock.unlock();

        bool sawClose = false;
        for (Task &task : taken) {
            runTask(*queue, task);
            sawClose |= task.kind == Task::Kind::Close;
        }
        taken.clear();

        lock.lock();
        queue->leased = false;
        if (sawClose)
            queue->closed = true;
        if (queue->closed && queue->queue.empty()) {
            const std::uint64_t key =
                static_cast<std::uint64_t>(queue->session) *
                    config_.shards +
                queue->shard;
            queues_.erase(key);
        } else {
            markReadyLocked(*queue);
        }
    }
}

} // namespace pmdb
