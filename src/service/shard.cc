#include "service/shard.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/order_spec.hh"

namespace pmdb
{

namespace
{

/** Events routed by address; everything else is broadcast. */
bool
isAddressed(EventKind kind)
{
    return kind == EventKind::Store || kind == EventKind::Flush ||
           kind == EventKind::TxLog;
}

void
mergeStats(DebuggerStats *total, const DebuggerStats &part)
{
    // Addressed work is partitioned across shards: sum it. Boundary
    // events are broadcast, so every shard counts each fence/epoch —
    // take the max, which equals the true count.
    total->stores += part.stores;
    total->flushes += part.flushes;
    total->fences = std::max(total->fences, part.fences);
    total->epochs = std::max(total->epochs, part.epochs);
    total->treeNodeSampleSum += part.treeNodeSampleSum;
    total->treeNodeSamples += part.treeNodeSamples;
    total->tree.insertions += part.tree.insertions;
    total->tree.removals += part.tree.removals;
    total->tree.reorganizations += part.tree.reorganizations;
    total->tree.merges += part.tree.merges;
    total->array.collectiveInvalidations +=
        part.array.collectiveInvalidations;
    total->array.recordsCollectivelyFreed +=
        part.array.recordsCollectivelyFreed;
    total->array.recordsMovedToTree += part.array.recordsMovedToTree;
    total->array.recordsDroppedIndividually +=
        part.array.recordsDroppedIndividually;
    total->array.overflowStores += part.array.overflowStores;
    total->array.maxUsage =
        std::max(total->array.maxUsage, part.array.maxUsage);
}

} // namespace

/** Rendezvous for closeSession: shards deposit results and count down. */
struct ShardPool::CloseBarrier
{
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::vector<std::vector<BugReport>> bugs;
    std::vector<DebuggerStats> stats;
};

struct ShardPool::Task
{
    enum class Kind
    {
        Open,
        Name,
        Events,
        Close,
    };

    Kind kind = Kind::Events;
    SessionId session = 0;
    /** Open */
    DebuggerConfig config;
    /** Name */
    std::uint32_t nameId = 0;
    std::string name;
    /** Events */
    std::vector<Event> events;
    /** Close */
    CloseBarrier *barrier = nullptr;
};

struct ShardPool::Worker
{
    /** Per-(session, shard) detector state. Heap-allocated so the
     *  NameTable address handed to PmDebugger::attached stays stable. */
    struct Session
    {
        NameTable names;
        std::unique_ptr<PmDebugger> debugger;
    };

    std::thread thread;
    std::mutex mutex;
    std::condition_variable wake;
    std::deque<Task> queue;
    bool stopping = false;
    std::unordered_map<SessionId, std::unique_ptr<Session>> sessions;
};

ShardPool::ShardPool(ShardPoolConfig config)
    : config_(config)
{
    if (!config_.shards)
        config_.shards = 1;
    if (!config_.stripeBytes)
        config_.stripeBytes = 64ull << 20;
    for (std::size_t i = 0; i < config_.shards; ++i)
        workers_.push_back(std::make_unique<Worker>());
}

ShardPool::~ShardPool()
{
    stop();
}

void
ShardPool::start()
{
    if (running_)
        return;
    running_ = true;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        Worker &worker = *workers_[i];
        worker.stopping = false;
        worker.thread =
            std::thread([this, &worker, i] { workerLoop(worker, i); });
    }
}

void
ShardPool::stop()
{
    if (!running_)
        return;
    running_ = false;
    for (auto &worker : workers_) {
        {
            std::lock_guard<std::mutex> lock(worker->mutex);
            worker->stopping = true;
        }
        worker->wake.notify_all();
    }
    for (auto &worker : workers_) {
        if (worker->thread.joinable())
            worker->thread.join();
    }
}

std::size_t
ShardPool::homeShard(SessionId session) const
{
    return session % config_.shards;
}

std::size_t
ShardPool::shardOf(SessionId session, Addr addr) const
{
    const Addr stripe = addr / config_.stripeBytes;
    return static_cast<std::size_t>((stripe + session) %
                                    config_.shards);
}

void
ShardPool::enqueue(std::size_t shard, Task task)
{
    Worker &worker = *workers_[shard];
    {
        std::lock_guard<std::mutex> lock(worker.mutex);
        worker.queue.push_back(std::move(task));
    }
    worker.wake.notify_one();
}

void
ShardPool::openSession(SessionId session, const DebuggerConfig &config,
                       bool pinned)
{
    {
        std::lock_guard<std::mutex> lock(pinnedMutex_);
        pinned_[session] = pinned;
    }
    const std::size_t home = homeShard(session);
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        Task task;
        task.kind = Task::Kind::Open;
        task.session = session;
        task.config = config;
        // Context-only rules fire on broadcast boundaries alone, so
        // every shard would report the same bug; keep them on the home
        // shard only to preserve single-detector report identity.
        if (shard != home)
            task.config.detectRedundantEpochFence = false;
        enqueue(shard, std::move(task));
    }
}

void
ShardPool::internName(SessionId session, std::uint32_t nameId,
                      std::string name)
{
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        Task task;
        task.kind = Task::Kind::Name;
        task.session = session;
        task.nameId = nameId;
        task.name = name;
        enqueue(shard, std::move(task));
    }
}

void
ShardPool::routeEvents(SessionId session, const Event *events,
                       std::size_t count)
{
    bool pinned = false;
    {
        std::lock_guard<std::mutex> lock(pinnedMutex_);
        const auto it = pinned_.find(session);
        pinned = it != pinned_.end() && it->second;
    }

    // Partition into per-shard subsequences. Relative order within a
    // shard matches stream order because events are appended in order.
    std::vector<std::vector<Event>> parts(workers_.size());
    for (std::size_t i = 0; i < count; ++i) {
        const Event &event = events[i];
        if (pinned) {
            parts[homeShard(session)].push_back(event);
        } else if (isAddressed(event.kind)) {
            const std::size_t shard = shardOf(session, event.addr);
            if (event.size &&
                shardOf(session, event.addr + event.size - 1) != shard) {
                straddles_.fetch_add(1, std::memory_order_relaxed);
            }
            parts[shard].push_back(event);
        } else {
            for (auto &part : parts)
                part.push_back(event);
        }
    }
    for (std::size_t shard = 0; shard < parts.size(); ++shard) {
        if (parts[shard].empty())
            continue;
        Task task;
        task.kind = Task::Kind::Events;
        task.session = session;
        task.events = std::move(parts[shard]);
        enqueue(shard, std::move(task));
    }
}

SessionVerdict
ShardPool::closeSession(SessionId session,
                        const std::vector<BugReport> &external)
{
    CloseBarrier barrier;
    barrier.remaining = workers_.size();
    barrier.bugs.resize(workers_.size());
    barrier.stats.resize(workers_.size());
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        Task task;
        task.kind = Task::Kind::Close;
        task.session = session;
        task.barrier = &barrier;
        enqueue(shard, std::move(task));
    }
    {
        std::unique_lock<std::mutex> lock(barrier.mutex);
        barrier.done.wait(lock, [&] { return barrier.remaining == 0; });
    }
    {
        std::lock_guard<std::mutex> lock(pinnedMutex_);
        pinned_.erase(session);
    }

    // Merge: home shard first so that, at equal seq, its chronological
    // ordering wins; client-reported external bugs come last at equal
    // seq (in-process detection reports at an event before a manual
    // cross-failure check stamped with the same sequence number).
    std::vector<BugReport> merged;
    const std::size_t home = homeShard(session);
    for (const BugReport &bug : barrier.bugs[home])
        merged.push_back(bug);
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        if (shard == home)
            continue;
        for (const BugReport &bug : barrier.bugs[shard])
            merged.push_back(bug);
    }
    for (const BugReport &bug : external)
        merged.push_back(bug);
    std::stable_sort(merged.begin(), merged.end(),
                     [](const BugReport &a, const BugReport &b) {
                         return a.seq < b.seq;
                     });

    SessionVerdict verdict;
    BugCollector collector;
    for (const BugReport &bug : merged) {
        if (collector.report(bug))
            verdict.bugs.push_back(bug);
    }
    for (const DebuggerStats &part : barrier.stats)
        mergeStats(&verdict.stats, part);
    return verdict;
}

std::uint64_t
ShardPool::straddleCount() const
{
    return straddles_.load(std::memory_order_relaxed);
}

void
ShardPool::workerLoop(Worker &worker, std::size_t index)
{
    (void)index;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(worker.mutex);
            worker.wake.wait(lock, [&] {
                return worker.stopping || !worker.queue.empty();
            });
            if (worker.queue.empty()) {
                if (worker.stopping)
                    return;
                continue;
            }
            task = std::move(worker.queue.front());
            worker.queue.pop_front();
        }

        switch (task.kind) {
          case Task::Kind::Open: {
            auto session = std::make_unique<Worker::Session>();
            session->debugger =
                std::make_unique<PmDebugger>(task.config);
            session->debugger->attached(session->names);
            worker.sessions[task.session] = std::move(session);
            break;
          }
          case Task::Kind::Name: {
            const auto it = worker.sessions.find(task.session);
            if (it == worker.sessions.end())
                break;
            const std::uint32_t id = it->second->names.intern(task.name);
            if (id != task.nameId) {
                warn("service shard: name id mismatch (got " +
                     std::to_string(id) + ", expected " +
                     std::to_string(task.nameId) + ")");
            }
            break;
          }
          case Task::Kind::Events: {
            const auto it = worker.sessions.find(task.session);
            if (it == worker.sessions.end())
                break;
            it->second->debugger->handleBatch(task.events.data(),
                                              task.events.size());
            break;
          }
          case Task::Kind::Close: {
            const auto it = worker.sessions.find(task.session);
            std::vector<BugReport> bugs;
            DebuggerStats stats;
            if (it != worker.sessions.end()) {
                it->second->debugger->finalize();
                bugs = it->second->debugger->bugs().bugs();
                stats = it->second->debugger->stats();
                worker.sessions.erase(it);
            }
            CloseBarrier *barrier = task.barrier;
            {
                // Notify while still holding the mutex: the barrier
                // lives on closeSession's stack and is destroyed as
                // soon as the closer observes remaining == 0. An
                // unlocked notify could run after that destruction.
                std::lock_guard<std::mutex> lock(barrier->mutex);
                barrier->bugs[index] = std::move(bugs);
                barrier->stats[index] = stats;
                --barrier->remaining;
                barrier->done.notify_all();
            }
            break;
          }
        }
    }
}

} // namespace pmdb
