#include "service/remote_sink.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "service/transport.hh"
#include "telemetry/metrics.hh"

namespace pmdb
{

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Publish-path metrics, resolved once; touched per frame, not per
 *  event. */
struct SinkMetrics
{
    telemetry::Counter &frames =
        telemetry::Registry::global().counter("client.sink.frames");
    telemetry::Counter &events =
        telemetry::Registry::global().counter("client.sink.events");
    telemetry::Counter &spilled =
        telemetry::Registry::global().counter("client.sink.spilled");
    telemetry::Counter &droppedEvents =
        telemetry::Registry::global().counter("client.sink.dropped");
    telemetry::Histogram &publishNs =
        telemetry::Registry::global().histogram("client.sink.publish_ns");
    telemetry::Histogram &blockStallNs = telemetry::Registry::global()
        .histogram("client.sink.block_stall_ns");

    static SinkMetrics &
    get()
    {
        static SinkMetrics instance;
        return instance;
    }
};

} // namespace

RemoteSink::~RemoteSink()
{
    disconnect();
}

bool
RemoteSink::connect(const Options &options, std::string *error)
{
    disconnect();
    options_ = options;
    if (options_.policy == SlowConsumerPolicy::Spill &&
        options_.spillPath.empty()) {
        return fail(error, "spill policy needs a spill path");
    }
    if (!ring_.create(options_.ringPath, options_.ringSlots, error))
        return false;
    if (options_.policy == SlowConsumerPolicy::Spill &&
        !spill_.open(options_.spillPath, error)) {
        ring_.close();
        return false;
    }

    fd_ = connectUnix(options_.socketPath, options_.connectTimeoutMs,
                      error);
    if (fd_ < 0) {
        ring_.close();
        return false;
    }

    HelloBody hello;
    hello.model = options_.model;
    hello.policy = options_.policy;
    hello.orderSpecText = options_.orderSpecText;
    hello.ringPath = options_.ringPath;
    hello.spillPath = options_.spillPath;
    hello.sharedPoolPath = options_.sharedPoolPath;
    hello.sharedWriterId = options_.sharedWriterId;
    MsgType type;
    std::vector<std::uint8_t> payload;
    if (!sendMessage(fd_, MsgType::Hello, hello.serialize()) ||
        !recvMessage(fd_, &type, &payload) ||
        type != MsgType::Welcome) {
        disconnect();
        return fail(error, "service handshake failed");
    }
    WireReader in(payload);
    session_ = in.get<std::uint32_t>();
    namesSent_ = 0;
    pushed_ = spilled_ = dropped_ = frames_ = 0;
    spilling_ = false;
    dead_ = false;
    batch_.setCapacity(std::min<std::uint32_t>(
        std::max<std::uint32_t>(options_.batchEvents, 1),
        options_.ringSlots));
    return true;
}

bool
RemoteSink::ensureNamesSent(std::uint32_t name_id)
{
    if (!names_ || name_id == noName)
        return true;
    while (namesSent_ <= name_id) {
        WireWriter out;
        out.put(namesSent_);
        out.putString(names_->name(namesSent_));
        MsgType type;
        std::vector<std::uint8_t> payload;
        // Wait for the ack: the daemon has handed the name to its
        // shards, so the event referencing it may now enter the ring.
        // Events already batched do not reference this name (it was
        // interned after them), so they may legally cross later.
        if (!sendMessage(fd_, MsgType::InternName, out.bytes()) ||
            !recvMessage(fd_, &type, &payload) ||
            type != MsgType::NameAck) {
            return false;
        }
        ++namesSent_;
    }
    return true;
}

/** Publish the accumulated batch as ring frames, applying the
 *  slow-consumer policy to whatever does not fit. */
void
RemoteSink::flushBatch()
{
    const Event *events = batch_.data();
    std::size_t remaining = batch_.size();
    if (!remaining)
        return;
    const bool telemetryOn = telemetry::enabled();
    const std::uint64_t publishStart =
        telemetryOn ? telemetry::nowNs() : 0;
    const std::size_t batchTotal = remaining;
    if (spilling_) {
        for (std::size_t i = 0; i < remaining; ++i) {
            if (spill_.append(events[i]))
                ++spilled_;
        }
        if (telemetryOn)
            SinkMetrics::get().spilled.add(remaining);
        batch_.clear();
        return;
    }

    std::size_t accepted = ring_.tryPushBatch(events, remaining);
    if (accepted) {
        ++frames_;
        if (telemetryOn)
            ring_.stampPublish(telemetry::nowNs());
    }
    pushed_ += accepted;
    events += accepted;
    remaining -= accepted;

    if (remaining) {
        switch (options_.policy) {
          case SlowConsumerPolicy::Block: {
            // Out of credits: yield until the consumer frees slots.
            // The sleep matters on a single-CPU box, where pure
            // spinning would starve the very consumer being waited
            // on. A full ring that never drains means the daemon is
            // gone, so probe the control socket every ~10ms and cut
            // the stream rather than hang the instrumented
            // application forever.
            const std::uint64_t stallStart =
                telemetryOn ? telemetry::nowNs() : 0;
            int sleeps = 0;
            while (remaining) {
                accepted = ring_.tryPushBatch(events, remaining);
                if (accepted) {
                    ++frames_;
                    if (telemetryOn)
                        ring_.stampPublish(telemetry::nowNs());
                    pushed_ += accepted;
                    events += accepted;
                    remaining -= accepted;
                    sleeps = 0;
                    continue;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                if (++sleeps >= 200) {
                    sleeps = 0;
                    if (peerClosed(fd_)) {
                        dead_ = true;
                        warn("client/sink", "daemon vanished while "
                             "blocked on a full ring; stream cut");
                        batch_.clear();
                        return;
                    }
                }
            }
            if (telemetryOn) {
                SinkMetrics::get().blockStallNs.record(
                    telemetry::nowNs() - stallStart);
            }
            break;
          }
          case SlowConsumerPolicy::Drop:
            for (std::size_t i = 0; i < remaining; ++i)
                ring_.countDrop();
            dropped_ += remaining;
            if (telemetryOn)
                SinkMetrics::get().droppedEvents.add(remaining);
            break;
          case SlowConsumerPolicy::Spill:
            spilling_ = true;
            spill_.flush();
            for (std::size_t i = 0; i < remaining; ++i) {
                if (spill_.append(events[i]))
                    ++spilled_;
            }
            if (telemetryOn)
                SinkMetrics::get().spilled.add(batchTotal - accepted);
            break;
        }
    }
    if (telemetryOn) {
        SinkMetrics &metrics = SinkMetrics::get();
        metrics.frames.add(1);
        metrics.events.add(batchTotal);
        metrics.publishNs.record(telemetry::nowNs() - publishStart);
    }
    batch_.clear();
}

void
RemoteSink::append(const Event &event)
{
    batch_.push(event);
    if (batch_.full())
        flushBatch();
}

void
RemoteSink::handle(const Event &event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_ || fd_ < 0)
        return;
    if (!ensureNamesSent(event.nameId)) {
        dead_ = true;
        warn("client/sink", "control plane failed; stream cut");
        return;
    }
    append(event);
}

void
RemoteSink::handleBatch(const Event *events, std::size_t count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_ || fd_ < 0)
        return;
    for (std::size_t i = 0; i < count; ++i) {
        if (!ensureNamesSent(events[i].nameId)) {
            dead_ = true;
            warn("client/sink", "control plane failed; stream cut");
            return;
        }
        append(events[i]);
    }
}

void
RemoteSink::reportBug(const BugReport &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_ || fd_ < 0)
        return;
    WireWriter out;
    putBugReport(out, report);
    if (!sendMessage(fd_, MsgType::ReportBug, out.bytes()))
        dead_ = true;
}

bool
RemoteSink::finish(ReportBody *out, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return fail(error, "not connected");
    if (!dead_)
        flushBatch(); // the tail of the stream is still client-side
    if (dead_) {
        disconnect();
        return fail(error, "session died mid-stream");
    }
    if (spill_.isOpen())
        spill_.close(); // make the tail durable before announcing it
    ring_.markProducerDone();

    ByeBody bye;
    bye.ringEvents = pushed_;
    bye.spillEvents = spilled_;
    MsgType type;
    std::vector<std::uint8_t> payload;
    bool ok = sendMessage(fd_, MsgType::Bye, bye.serialize()) &&
              recvMessage(fd_, &type, &payload) &&
              type == MsgType::Report &&
              ReportBody::deserialize(payload, out);
    if (!ok && error)
        *error = "service report exchange failed";
    disconnect();
    return ok;
}

void
RemoteSink::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (spill_.isOpen())
        spill_.close();
    ring_.close();
    // The spill file has served its purpose once the session is over.
    if (!options_.spillPath.empty())
        std::remove(options_.spillPath.c_str());
}

} // namespace pmdb
