/**
 * @file
 * Optional CPU affinity for service threads (`--pin-cores`).
 *
 * Pinning pollers and shard workers to distinct cores removes
 * scheduler migrations from the ingest hot path and keeps each
 * shard's detector bookkeeping warm in one core's cache. It is an
 * opt-in tuning knob: the default (unpinned) behavior is correct
 * everywhere, and pinning is a no-op on hosts with a single core or
 * without pthread affinity support.
 */

#ifndef PMDB_SERVICE_CPU_PIN_HH
#define PMDB_SERVICE_CPU_PIN_HH

#include <cstddef>
#include <thread>

namespace pmdb
{

/** Cores visible to this process (affinity-mask aware; >= 1). */
std::size_t availableCores();

/**
 * Pin @p thread to core `core % availableCores()`. Returns true on
 * success; false (harmless) where unsupported.
 */
bool pinThreadToCore(std::thread &thread, std::size_t core);

} // namespace pmdb

#endif // PMDB_SERVICE_CPU_PIN_HH
