/**
 * @file
 * Unix-domain-socket control plane: framed-message send/receive and
 * listen/connect helpers shared by the daemon and the client sink.
 */

#ifndef PMDB_SERVICE_TRANSPORT_HH
#define PMDB_SERVICE_TRANSPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace pmdb
{

/**
 * Bind and listen on a Unix-domain socket at @p path (any stale socket
 * file is removed first). Returns the listening fd, or -1 with
 * @p error filled.
 */
int listenUnix(const std::string &path, std::string *error = nullptr);

/**
 * Connect to the daemon's socket. Retries for up to @p timeout_ms so a
 * client racing daemon startup (the CI smoke test does) still binds.
 * Returns the connected fd, or -1 with @p error filled.
 */
int connectUnix(const std::string &path, int timeout_ms = 2000,
                std::string *error = nullptr);

/** Send one framed message; false on a broken peer. */
bool sendMessage(int fd, MsgType type,
                 const std::vector<std::uint8_t> &payload);

/**
 * Receive one framed message, blocking until a full frame arrives.
 * False on EOF or a broken frame.
 */
bool recvMessage(int fd, MsgType *type,
                 std::vector<std::uint8_t> *payload);

/** True when a full recv on @p fd would not block right now. */
bool readable(int fd, int timeout_ms = 0);

/**
 * True when the peer has hung up or the socket errored — without
 * consuming any pending data. Used as a liveness probe while blocked
 * on something other than the socket itself.
 */
bool peerClosed(int fd);

} // namespace pmdb

#endif // PMDB_SERVICE_TRANSPORT_HH
