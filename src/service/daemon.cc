#include "service/daemon.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/report.hh"
#include "service/cpu_pin.hh"
#include "service/spsc_ring.hh"
#include "service/transport.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "trace/trace_file.hh"

namespace pmdb
{

namespace
{

/** Poller drain-path metrics, resolved once; touched per frame. */
struct DrainMetrics
{
    telemetry::Counter &framesDrained = telemetry::Registry::global()
        .counter("pmdbd.frames_drained");
    telemetry::Counter &eventsDrained = telemetry::Registry::global()
        .counter("pmdbd.events_drained");
    telemetry::Histogram &drainBatchEvents =
        telemetry::Registry::global().histogram(
            "pmdbd.drain_batch_events");
    /** Publish-to-drain latency via the ring's frame stamp. */
    telemetry::Histogram &ringResidencyNs =
        telemetry::Registry::global().histogram(
            "pmdbd.ring_residency_ns");

    static DrainMetrics &
    get()
    {
        static DrainMetrics instance;
        return instance;
    }
};

/**
 * Normalize the daemon config and derive the pool's pinning layout:
 * pollers occupy cores [0, pollers), shard workers follow.
 */
ShardPoolConfig
poolConfigFor(ServiceConfig &config)
{
    if (config.pollers == 0)
        config.pollers = 1;
    if (config.drainEvents == 0)
        config.drainEvents = 4096;
    ShardPoolConfig pool = config.pool;
    pool.pinCores = config.pinCores;
    pool.pinBase = config.pollers;
    return pool;
}

/**
 * Adaptive idle backoff for a poller: yield while recently busy so a
 * burst resumes within a scheduler quantum, then escalate to sleeps
 * doubling up to 256 us so an idle daemon costs ~no CPU.
 */
void
idleBackoff(int idleRounds)
{
    constexpr int spinRounds = 64;
    if (idleRounds <= spinRounds) {
        std::this_thread::yield();
        return;
    }
    const int shift = std::min(idleRounds - spinRounds, 8);
    std::this_thread::sleep_for(std::chrono::microseconds(1 << shift));
}

} // namespace

/** One client connection, owned by its poller. */
struct ServiceDaemon::ActiveSession
{
    enum class Phase
    {
        Handshake, ///< Accepted; waiting for the Hello.
        Streaming, ///< Ring + control plane live.
        Closing    ///< Async close issued; callback pending.
    };

    int fd = -1;
    Phase phase = Phase::Handshake;
    SessionId id = 0;
    HelloBody hello;
    EventRing ring;
    ByeBody bye;
    bool sawBye = false;
    std::vector<BugReport> external;
    /** Routed events awaiting queue space (backpressure). */
    PendingRoute pending;
    /** Drain buffer; sized once at handshake. */
    std::vector<Event> scratch;
    SessionSummary summary;
    std::chrono::steady_clock::time_point started{};
    /** Set when the session is fully finished (poller may prune). */
    std::atomic<bool> done{false};
};

/** A poller thread plus the sessions assigned to it. */
struct ServiceDaemon::Poller
{
    std::size_t index = 0;
    std::thread thread;
    /** Guards sessions (accept thread appends, poller prunes). */
    std::mutex mutex;
    std::vector<std::shared_ptr<ActiveSession>> sessions;
    std::atomic<std::uint64_t> polls{0};
    std::atomic<std::uint64_t> idlePolls{0};
};

ServiceDaemon::ServiceDaemon(ServiceConfig config)
    : config_(std::move(config)), pool_(poolConfigFor(config_)),
      crossproc_(config_.pool.shards, config_.pool.stripeBytes)
{
}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

bool
ServiceDaemon::start(std::string *error)
{
    if (running_)
        return true;
    listenFd_ = listenUnix(config_.socketPath, error);
    if (listenFd_ < 0)
        return false;
    stopping_.store(false);
    pool_.start();
    pollers_.clear();
    for (std::size_t i = 0; i < config_.pollers; ++i) {
        auto poller = std::make_unique<Poller>();
        poller->index = i;
        poller->thread =
            std::thread([this, p = poller.get()] { pollerLoop(*p); });
        if (config_.pinCores)
            pinThreadToCore(poller->thread, i);
        pollers_.push_back(std::move(poller));
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
    if (!config_.metricsSocketPath.empty()) {
        metricsFd_ = listenUnix(config_.metricsSocketPath, error);
        if (metricsFd_ < 0) {
            stop();
            return false;
        }
        metricsThread_ = std::thread([this] { metricsLoop(); });
    }
    if (config_.statsIntervalSec)
        statsThread_ = std::thread([this] { statsLoop(); });
    if (!config_.traceOutPath.empty())
        telemetry::setSpansEnabled(true);
    running_ = true;
    return true;
}

void
ServiceDaemon::stop()
{
    if (!running_)
        return;
    stopping_.store(true);
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto &poller : pollers_) {
        if (poller->thread.joinable())
            poller->thread.join();
    }
    // Pollers issued an async close for every surviving session on
    // the way out; let the shard workers finish those before the pool
    // goes down. (Poller structs stay alive so counters remain
    // readable after stop.)
    {
        std::unique_lock<std::mutex> lock(closesMutex_);
        closesDone_.wait(
            lock, [this] { return outstandingCloses_.load() == 0; });
    }
    pool_.stop();
    if (metricsThread_.joinable())
        metricsThread_.join();
    if (statsThread_.joinable())
        statsThread_.join();
    if (metricsFd_ >= 0) {
        ::close(metricsFd_);
        metricsFd_ = -1;
        std::remove(config_.metricsSocketPath.c_str());
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        std::remove(config_.socketPath.c_str());
    }
    if (!config_.traceOutPath.empty()) {
        if (telemetry::SpanBuffer::global().writeChromeTrace(
                config_.traceOutPath)) {
            inform("pmdbd", "wrote span trace to " +
                   config_.traceOutPath);
        } else {
            warn("pmdbd", "cannot write span trace to " +
                 config_.traceOutPath);
        }
    }
    running_ = false;
}

bool
ServiceDaemon::waitForSessions(std::size_t count, int timeout_ms)
{
    std::unique_lock<std::mutex> lock(summariesMutex_);
    const auto ready = [&] { return summaries_.size() >= count; };
    if (timeout_ms < 0) {
        sessionDone_.wait(lock, ready);
        return true;
    }
    return sessionDone_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms), ready);
}

std::size_t
ServiceDaemon::completedSessions() const
{
    std::lock_guard<std::mutex> lock(summariesMutex_);
    return summaries_.size();
}

std::vector<SessionSummary>
ServiceDaemon::summaries() const
{
    std::lock_guard<std::mutex> lock(summariesMutex_);
    return summaries_;
}

IngestStats
ServiceDaemon::ingestStats() const
{
    IngestStats stats;
    for (const auto &poller : pollers_) {
        stats.polls += poller->polls.load();
        stats.idlePolls += poller->idlePolls.load();
    }
    return stats;
}

telemetry::MetricsSnapshot
ServiceDaemon::metricsSnapshot() const
{
    telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    const IngestStats ingest = ingestStats();
    snap.addCounter("pmdbd.polls", ingest.polls);
    snap.addCounter("pmdbd.idle_polls", ingest.idlePolls);
    snap.addCounter("pmdbd.steals", pool_.stealCount());
    snap.addCounter("pmdbd.straddles", pool_.straddleCount());
    const std::vector<ShardStats> shards = pool_.shardStats();
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const std::string label =
            "{shard=\"" + std::to_string(i) + "\"}";
        snap.addCounter("pmdbd.shard.batches" + label,
                        shards[i].batches);
        snap.addCounter("pmdbd.shard.events" + label,
                        shards[i].events);
        snap.addCounter("pmdbd.shard.steals" + label,
                        shards[i].steals);
        snap.addGauge("pmdbd.shard.queue_depth" + label,
                      static_cast<std::int64_t>(shards[i].queueDepth));
    }
    // Per-session ingest: completed sessions from their summaries,
    // live ones read in place. Live counters are written by the
    // owning poller without synchronization — a monitoring-only racy
    // read, never fed back into detection.
    const auto addSession = [&](SessionId id, std::uint64_t events,
                                std::uint64_t batches, double seconds,
                                bool live) {
        const std::string label =
            "{session=\"" + std::to_string(id) + "\"}";
        snap.addCounter("pmdbd.session.events" + label, events);
        snap.addCounter("pmdbd.session.batches" + label, batches);
        snap.addGauge("pmdbd.session.millis" + label,
                      static_cast<std::int64_t>(seconds * 1000.0));
        snap.addGauge("pmdbd.session.live" + label, live ? 1 : 0);
    };
    for (const SessionSummary &session : summaries()) {
        addSession(session.id, session.eventsProcessed,
                   session.batchesDrained, session.seconds, false);
    }
    const auto now = std::chrono::steady_clock::now();
    for (const auto &poller : pollers_) {
        std::lock_guard<std::mutex> lock(poller->mutex);
        for (const auto &session : poller->sessions) {
            if (session->phase != ActiveSession::Phase::Streaming)
                continue;
            addSession(session->id, session->summary.eventsProcessed,
                       session->summary.batchesDrained,
                       std::chrono::duration<double>(
                           now - session->started)
                           .count(),
                       true);
        }
    }
    snap.addGauge("pmdbd.sessions_completed",
                  static_cast<std::int64_t>(completedSessions()));
    snap.addGauge(
        "pmdbd.crossproc.groups_completed",
        static_cast<std::int64_t>(crossproc_.results().size()));
    snap.sortByName();
    return snap;
}

void
ServiceDaemon::metricsLoop()
{
    while (!stopping_.load()) {
        if (!readable(metricsFd_, 200))
            continue;
        const int fd = ::accept(metricsFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // One request line per connection: "prom" for Prometheus
        // text, anything else (including EOF) serves JSON.
        char buf[16] = {};
        ssize_t got = 0;
        if (readable(fd, 1000))
            got = ::read(fd, buf, sizeof(buf) - 1);
        const bool prom =
            got >= 4 && std::string(buf, 4) == "prom";
        const telemetry::MetricsSnapshot snap = metricsSnapshot();
        const std::string reply =
            prom ? snap.toPrometheus() : snap.toJson() + "\n";
        std::size_t sent = 0;
        while (sent < reply.size()) {
            const ssize_t n = ::write(fd, reply.data() + sent,
                                      reply.size() - sent);
            if (n <= 0)
                break;
            sent += static_cast<std::size_t>(n);
        }
        ::close(fd);
    }
}

void
ServiceDaemon::statsLoop()
{
    auto next = std::chrono::steady_clock::now();
    while (!stopping_.load()) {
        next += std::chrono::seconds(config_.statsIntervalSec);
        while (!stopping_.load() &&
               std::chrono::steady_clock::now() < next) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        if (stopping_.load())
            return;
        const IngestStats ingest = ingestStats();
        std::uint64_t events = 0, steals = 0;
        for (const ShardStats &shard : pool_.shardStats()) {
            events += shard.events;
            steals += shard.steals;
        }
        std::ostringstream line;
        line << "sessions=" << completedSessions()
             << " events=" << events << " steals=" << steals
             << " polls=" << ingest.polls << " idle_ratio=";
        line.precision(3);
        line << std::fixed << ingest.idleRatio();
        inform("pmdbd/stats", line.str());
    }
}

std::string
ServiceDaemon::aggregatedJson() const
{
    const std::vector<SessionSummary> sessions = summaries();
    const IngestStats ingest = ingestStats();
    std::ostringstream out;
    out << "{\"schema\": 2, \"shards\": " << pool_.shardCount()
        << ", \"stripe_bytes\": " << pool_.stripeBytes()
        << ", \"straddles\": " << pool_.straddleCount()
        << ", \"pollers\": " << config_.pollers
        << ", \"polls\": " << ingest.polls
        << ", \"idle_polls\": " << ingest.idlePolls
        << ", \"idle_poll_ratio\": " << ingest.idleRatio()
        << ", \"steals\": " << pool_.stealCount()
        << ", \"shard_stats\": [";
    bool first = true;
    for (const ShardStats &shard : pool_.shardStats()) {
        if (!first)
            out << ", ";
        first = false;
        out << "{\"batches\": " << shard.batches
            << ", \"events\": " << shard.events
            << ", \"steals\": " << shard.steals
            << ", \"queue_depth\": " << shard.queueDepth << "}";
    }
    out << "], \"sessions\": [";
    first = true;
    for (const SessionSummary &session : sessions) {
        if (!first)
            out << ", ";
        first = false;
        BugCollector bugs;
        for (const BugReport &bug : session.verdict.bugs)
            bugs.report(bug);
        const double rate =
            session.seconds > 0.0
                ? static_cast<double>(session.eventsProcessed) /
                      session.seconds
                : 0.0;
        out << "{\"id\": " << session.id
            << ", \"events\": " << session.eventsProcessed
            << ", \"dropped\": " << session.eventsDropped
            << ", \"spill_replayed\": " << session.spillReplayed
            << ", \"batches_drained\": " << session.batchesDrained
            << ", \"queue_full_stalls\": " << session.queueFullStalls
            << ", \"seconds\": " << session.seconds
            << ", \"events_per_sec\": " << rate << ", \"aborted\": "
            << (session.aborted ? "true" : "false") << ", \"report\": "
            << reportToJson(bugs, session.verdict.stats) << "}";
    }
    // The same snapshot the metrics endpoint serves, embedded whole:
    // the two outputs render one structure and cannot drift.
    out << "], \"crossproc\": " << crossproc_.resultsJson()
        << ", \"metrics\": " << metricsSnapshot().toJson() << "}";
    return out.str();
}

void
ServiceDaemon::acceptLoop()
{
    while (!stopping_.load()) {
        if (!readable(listenFd_, 200))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // Backstop against a client wedged mid-message: blocking
        // recvs on this socket give up after a while instead of
        // pinning a poller (and stop()'s join) forever.
        timeval recvTimeout{};
        recvTimeout.tv_sec = 5;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recvTimeout,
                     sizeof(recvTimeout));
        auto session = std::make_shared<ActiveSession>();
        session->fd = fd;
        Poller &poller =
            *pollers_[nextPoller_.fetch_add(1) % pollers_.size()];
        std::lock_guard<std::mutex> lock(poller.mutex);
        poller.sessions.push_back(std::move(session));
    }
}

void
ServiceDaemon::pollerLoop(Poller &poller)
{
    std::vector<std::shared_ptr<ActiveSession>> snapshot;
    int idleRounds = 0;
    while (!stopping_.load()) {
        snapshot.clear();
        {
            std::lock_guard<std::mutex> lock(poller.mutex);
            snapshot = poller.sessions;
        }
        bool progressed = false;
        for (const auto &session : snapshot) {
            if (session->done.load() ||
                session->phase == ActiveSession::Phase::Closing)
                continue;
            if (pollSession(session))
                progressed = true;
        }
        {
            std::lock_guard<std::mutex> lock(poller.mutex);
            auto &sessions = poller.sessions;
            sessions.erase(
                std::remove_if(sessions.begin(), sessions.end(),
                               [](const auto &session) {
                                   return session->done.load();
                               }),
                sessions.end());
        }
        poller.polls.fetch_add(1, std::memory_order_relaxed);
        if (progressed) {
            idleRounds = 0;
            continue;
        }
        poller.idlePolls.fetch_add(1, std::memory_order_relaxed);
        idleBackoff(++idleRounds);
    }
    // Stopping: abort whatever is still live. Sessions already in
    // Closing settle through their pending callback.
    std::vector<std::shared_ptr<ActiveSession>> leftover;
    {
        std::lock_guard<std::mutex> lock(poller.mutex);
        leftover.swap(poller.sessions);
    }
    for (const auto &session : leftover) {
        if (session->done.load())
            continue;
        switch (session->phase) {
          case ActiveSession::Phase::Handshake:
            ::close(session->fd);
            session->fd = -1;
            session->done.store(true);
            break;
          case ActiveSession::Phase::Streaming:
            beginClose(session, /*aborted=*/true);
            break;
          case ActiveSession::Phase::Closing:
            break;
        }
    }
}

bool
ServiceDaemon::finishHandshake(ActiveSession &session)
{
    // A client may connect and never speak; poll instead of blocking
    // so one silent socket cannot stall the whole poller.
    if (!readable(session.fd, 0))
        return false;
    MsgType type;
    std::vector<std::uint8_t> payload;
    if (!recvMessage(session.fd, &type, &payload) ||
        type != MsgType::Hello ||
        !HelloBody::deserialize(payload, &session.hello)) {
        ::close(session.fd);
        session.fd = -1;
        session.done.store(true);
        return true;
    }
    std::string error;
    if (!session.ring.open(session.hello.ringPath, &error)) {
        WireWriter out;
        out.putString(error);
        sendMessage(session.fd, MsgType::Error, out.bytes());
        ::close(session.fd);
        session.fd = -1;
        session.done.store(true);
        return true;
    }
    session.id = nextSession_.fetch_add(1);
    session.summary.id = session.id;

    DebuggerConfig config;
    config.model = session.hello.model;
    config.arrayCapacity = config_.pool.arrayCapacity;
    config.mergeThreshold = config_.pool.mergeThreshold;
    if (!session.hello.orderSpecText.empty())
        config.orderSpec =
            OrderSpec::fromText(session.hello.orderSpecText);
    // Global-order rules cannot be checked against a partitioned
    // stream; pin such sessions to one shard (a degenerate barrier).
    const bool pinned =
        session.hello.model == PersistencyModel::Strand ||
        !session.hello.orderSpecText.empty();
    pool_.openSession(session.id, config, pinned);

    // Shared-pool sessions additionally join their pool's
    // cross-session detection group; their events still flow through
    // per-session detection unchanged.
    if (!session.hello.sharedPoolPath.empty()) {
        crossproc_.joinGroup(session.id, session.hello.sharedPoolPath,
                             session.hello.sharedWriterId);
    }

    WireWriter out;
    out.put(static_cast<std::uint32_t>(session.id));
    sendMessage(session.fd, MsgType::Welcome, out.bytes());

    session.scratch.resize(config_.drainEvents);
    session.started = std::chrono::steady_clock::now();
    session.phase = ActiveSession::Phase::Streaming;
    return true;
}

bool
ServiceDaemon::pollSession(const std::shared_ptr<ActiveSession> &sp)
{
    ActiveSession &session = *sp;
    if (session.phase == ActiveSession::Phase::Handshake)
        return finishHandshake(session);

    bool progressed = false;

    // 1. Control plane: names, client-side bug reports, Bye.
    while (!session.sawBye && readable(session.fd, 0)) {
        MsgType type;
        std::vector<std::uint8_t> payload;
        if (!recvMessage(session.fd, &type, &payload)) {
            beginClose(sp, /*aborted=*/true);
            return true;
        }
        progressed = true;
        switch (type) {
          case MsgType::InternName: {
            WireReader in(payload);
            const auto id = in.get<std::uint32_t>();
            pool_.internName(session.id, id, in.getString());
            WireWriter ack;
            ack.put(id);
            sendMessage(session.fd, MsgType::NameAck, ack.bytes());
            break;
          }
          case MsgType::ReportBug: {
            WireReader in(payload);
            session.external.push_back(getBugReport(in));
            break;
          }
          case MsgType::Bye:
            if (!ByeBody::deserialize(payload, &session.bye)) {
                // A truncated Bye would silently zero the spill
                // accounting and drop the spilled tail from the
                // report; treat the session as aborted instead.
                warn("pmdbd/poller", "malformed Bye; aborting session " +
                     std::to_string(session.id));
                beginClose(sp, /*aborted=*/true);
                return true;
            }
            session.sawBye = true;
            break;
          default:
            break;
        }
    }

    // 2. Backlog first: events refused by a full queue must reach the
    // pool before anything newer, or per-shard order breaks.
    if (!session.pending.empty()) {
        if (pool_.tryFlushPending(session.id, &session.pending))
            progressed = true;
        else
            ++session.summary.queueFullStalls;
    }

    // 3. Ring drain, in whole published frames.
    if (session.pending.empty()) {
        const std::size_t popped = session.ring.popBatch(
            session.scratch.data(), session.scratch.size());
        if (popped) {
            progressed = true;
            ++session.summary.batchesDrained;
            session.summary.eventsProcessed += popped;
            if (telemetry::enabled()) {
                DrainMetrics &metrics = DrainMetrics::get();
                const std::uint64_t now = telemetry::nowNs();
                metrics.framesDrained.add(1);
                metrics.eventsDrained.add(popped);
                metrics.drainBatchEvents.record(popped);
                // Publish stamp of the newest frame in the drained
                // span: a lower bound on how long these events sat in
                // the ring (same-host CLOCK_MONOTONIC on both sides).
                const std::uint64_t published =
                    session.ring.lastPublishNs();
                if (published && published <= now) {
                    const std::uint64_t residency = now - published;
                    metrics.ringResidencyNs.record(residency);
                    if (telemetry::spansEnabled()) {
                        telemetry::Span span;
                        span.name = "ring.residency";
                        span.category = "pmdbd";
                        span.startNs = published;
                        span.durNs = residency;
                        span.track = session.id;
                        span.arg =
                            "events=" + std::to_string(popped);
                        telemetry::SpanBuffer::global().record(
                            std::move(span));
                    }
                }
            }
            if (!session.hello.sharedPoolPath.empty()) {
                crossproc_.feed(session.id, session.scratch.data(),
                                popped);
            }
            if (!pool_.tryRouteEvents(session.id,
                                      session.scratch.data(), popped,
                                      &session.pending))
                ++session.summary.queueFullStalls;
        }
    }

    // 4. End of stream: Bye seen and everything routed.
    if (session.sawBye && session.pending.empty() &&
        session.ring.size() == 0) {
        // Under the Spill policy the tail of the stream sits in the
        // spill trace file, in order; replay it after the ring.
        if (session.bye.spillEvents &&
            !session.hello.spillPath.empty()) {
            LoadedTrace spill;
            bool truncated = false;
            std::string error;
            if (readTraceStream(session.hello.spillPath, &spill,
                                &truncated, &error)) {
                if (truncated) {
                    warn("pmdbd/poller", "spill trace " +
                         session.hello.spillPath +
                         " has a truncated tail");
                }
                if (!session.hello.sharedPoolPath.empty()) {
                    crossproc_.feed(session.id, spill.events.data(),
                                    spill.events.size());
                }
                pool_.routeEvents(session.id, spill.events.data(),
                                  spill.events.size());
                session.summary.spillReplayed = spill.events.size();
                session.summary.eventsProcessed +=
                    spill.events.size();
            } else {
                warn("pmdbd/poller", "cannot replay spill trace: " + error);
            }
        }
        beginClose(sp, /*aborted=*/false);
        return true;
    }
    return progressed;
}

void
ServiceDaemon::beginClose(const std::shared_ptr<ActiveSession> &sp,
                          bool aborted)
{
    ActiveSession &session = *sp;
    session.phase = ActiveSession::Phase::Closing;
    session.summary.eventsDropped = session.ring.droppedCount();
    session.summary.aborted = aborted;
    // Every event of this session has been fed by now (feeds and this
    // close run on the same poller); when this is the group's last
    // member, the cross-session verdict is computed here.
    if (!session.hello.sharedPoolPath.empty())
        crossproc_.sessionComplete(session.id);
    outstandingCloses_.fetch_add(1);
    // The callback runs on the shard worker that finalizes the last
    // (session, shard) queue — off the poller, so a slow report send
    // never stalls ingestion for other sessions.
    pool_.closeSessionAsync(
        session.id, std::move(session.external),
        [this, sp](SessionVerdict &&verdict) {
            ActiveSession &session = *sp;
            session.summary.verdict = std::move(verdict);
            session.summary.seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - session.started)
                    .count();
            if (!session.summary.aborted) {
                BugCollector bugs;
                for (const BugReport &bug : session.summary.verdict.bugs)
                    bugs.report(bug);
                ReportBody report;
                report.bugs = session.summary.verdict.bugs;
                report.eventsProcessed = session.summary.eventsProcessed;
                report.eventsDropped = session.summary.eventsDropped;
                report.json =
                    reportToJson(bugs, session.summary.verdict.stats);
                sendMessage(session.fd, MsgType::Report,
                            report.serialize());
            }
            ::close(session.fd);
            session.fd = -1;
            {
                std::lock_guard<std::mutex> lock(summariesMutex_);
                summaries_.push_back(session.summary);
            }
            sessionDone_.notify_all();
            session.done.store(true);
            {
                std::lock_guard<std::mutex> lock(closesMutex_);
                outstandingCloses_.fetch_sub(1);
            }
            closesDone_.notify_all();
        });
}

} // namespace pmdb
