#include "service/daemon.hh"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/report.hh"
#include "service/spsc_ring.hh"
#include "service/transport.hh"
#include "trace/trace_file.hh"

namespace pmdb
{

namespace
{

/** Ring events popped per routing batch. */
constexpr std::size_t popBatch = 512;

/** Idle backoff: keeps a 1-CPU box responsive without busy-spinning. */
void
idlePause()
{
    std::this_thread::sleep_for(std::chrono::microseconds(100));
}

} // namespace

ServiceDaemon::ServiceDaemon(ServiceConfig config)
    : config_(std::move(config)), pool_(config_.pool)
{
}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

bool
ServiceDaemon::start(std::string *error)
{
    if (running_)
        return true;
    listenFd_ = listenUnix(config_.socketPath, error);
    if (listenFd_ < 0)
        return false;
    stopping_.store(false);
    pool_.start();
    acceptThread_ = std::thread([this] { acceptLoop(); });
    running_ = true;
    return true;
}

void
ServiceDaemon::stop()
{
    if (!running_)
        return;
    stopping_.store(true);
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::lock_guard<std::mutex> lock(sessionThreadsMutex_);
        for (std::thread &thread : sessionThreads_) {
            if (thread.joinable())
                thread.join();
        }
        sessionThreads_.clear();
    }
    pool_.stop();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        std::remove(config_.socketPath.c_str());
    }
    running_ = false;
}

bool
ServiceDaemon::waitForSessions(std::size_t count, int timeout_ms)
{
    std::unique_lock<std::mutex> lock(summariesMutex_);
    const auto ready = [&] { return summaries_.size() >= count; };
    if (timeout_ms < 0) {
        sessionDone_.wait(lock, ready);
        return true;
    }
    return sessionDone_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms), ready);
}

std::size_t
ServiceDaemon::completedSessions() const
{
    std::lock_guard<std::mutex> lock(summariesMutex_);
    return summaries_.size();
}

std::vector<SessionSummary>
ServiceDaemon::summaries() const
{
    std::lock_guard<std::mutex> lock(summariesMutex_);
    return summaries_;
}

std::string
ServiceDaemon::aggregatedJson() const
{
    const std::vector<SessionSummary> sessions = summaries();
    std::ostringstream out;
    out << "{\"shards\": " << pool_.shardCount()
        << ", \"stripe_bytes\": " << pool_.stripeBytes()
        << ", \"straddles\": " << pool_.straddleCount()
        << ", \"sessions\": [";
    bool first = true;
    for (const SessionSummary &session : sessions) {
        if (!first)
            out << ", ";
        first = false;
        BugCollector bugs;
        for (const BugReport &bug : session.verdict.bugs)
            bugs.report(bug);
        out << "{\"id\": " << session.id
            << ", \"events\": " << session.eventsProcessed
            << ", \"dropped\": " << session.eventsDropped
            << ", \"spill_replayed\": " << session.spillReplayed
            << ", \"aborted\": "
            << (session.aborted ? "true" : "false") << ", \"report\": "
            << reportToJson(bugs, session.verdict.stats) << "}";
    }
    out << "]}";
    return out.str();
}

void
ServiceDaemon::acceptLoop()
{
    while (!stopping_.load()) {
        if (!readable(listenFd_, 200))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // Backstop against a client wedged mid-message: blocking
        // recvs on this socket give up after a while instead of
        // pinning the session thread (and stop()'s join) forever.
        timeval recvTimeout{};
        recvTimeout.tv_sec = 5;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recvTimeout,
                     sizeof(recvTimeout));
        std::lock_guard<std::mutex> lock(sessionThreadsMutex_);
        sessionThreads_.emplace_back(
            [this, fd] { serveSession(fd); });
    }
}

void
ServiceDaemon::serveSession(int fd)
{
    SessionSummary summary;
    MsgType type;
    std::vector<std::uint8_t> payload;
    HelloBody hello;
    // A client may connect and never speak; wait for the Hello with
    // the stop flag in the loop so stop() is never stuck joining a
    // thread that is blocked in recv on a silent socket.
    bool helloReady = false;
    while (!stopping_.load()) {
        if (readable(fd, 200)) {
            helloReady = true;
            break;
        }
    }
    if (!helloReady || !recvMessage(fd, &type, &payload) ||
        type != MsgType::Hello ||
        !HelloBody::deserialize(payload, &hello)) {
        ::close(fd);
        return;
    }

    EventRing ring;
    std::string error;
    if (!ring.open(hello.ringPath, &error)) {
        WireWriter out;
        out.putString(error);
        sendMessage(fd, MsgType::Error, out.bytes());
        ::close(fd);
        return;
    }

    const SessionId session = nextSession_.fetch_add(1);
    summary.id = session;

    DebuggerConfig config;
    config.model = hello.model;
    config.arrayCapacity = config_.pool.arrayCapacity;
    config.mergeThreshold = config_.pool.mergeThreshold;
    if (!hello.orderSpecText.empty())
        config.orderSpec = OrderSpec::fromText(hello.orderSpecText);
    // Global-order rules cannot be checked against a partitioned
    // stream; pin such sessions to one shard (a degenerate barrier).
    const bool pinned = hello.model == PersistencyModel::Strand ||
                        !hello.orderSpecText.empty();
    pool_.openSession(session, config, pinned);

    {
        WireWriter out;
        out.put(static_cast<std::uint32_t>(session));
        sendMessage(fd, MsgType::Welcome, out.bytes());
    }

    std::vector<BugReport> external;
    std::vector<Event> buffer(popBatch);
    bool sawBye = false;
    bool clientAlive = true;
    ByeBody bye;

    while (clientAlive && !sawBye) {
        bool progressed = false;
        if (readable(fd, 0)) {
            if (!recvMessage(fd, &type, &payload)) {
                clientAlive = false;
                break;
            }
            progressed = true;
            switch (type) {
              case MsgType::InternName: {
                WireReader in(payload);
                const auto id = in.get<std::uint32_t>();
                pool_.internName(session, id, in.getString());
                WireWriter ack;
                ack.put(id);
                sendMessage(fd, MsgType::NameAck, ack.bytes());
                break;
              }
              case MsgType::ReportBug: {
                WireReader in(payload);
                external.push_back(getBugReport(in));
                break;
              }
              case MsgType::Bye:
                if (!ByeBody::deserialize(payload, &bye)) {
                    // A truncated Bye would silently zero the spill
                    // accounting and drop the spilled tail from the
                    // report; treat the session as aborted instead.
                    warn("service: malformed Bye; aborting session " +
                         std::to_string(session));
                    clientAlive = false;
                    break;
                }
                sawBye = true;
                break;
              default:
                break;
            }
        }
        const std::size_t popped =
            ring.tryPop(buffer.data(), buffer.size());
        if (popped) {
            pool_.routeEvents(session, buffer.data(), popped);
            summary.eventsProcessed += popped;
            progressed = true;
        }
        if (!progressed) {
            if (stopping_.load()) {
                clientAlive = false;
                break;
            }
            idlePause();
        }
    }

    if (sawBye) {
        // Drain whatever the producer pushed before its Bye.
        for (;;) {
            const std::size_t popped =
                ring.tryPop(buffer.data(), buffer.size());
            if (!popped)
                break;
            pool_.routeEvents(session, buffer.data(), popped);
            summary.eventsProcessed += popped;
        }
        // Under the Spill policy the tail of the stream sits in the
        // spill trace file, in order; replay it after the ring.
        if (bye.spillEvents && !hello.spillPath.empty()) {
            LoadedTrace spill;
            bool truncated = false;
            if (readTraceStream(hello.spillPath, &spill, &truncated,
                                &error)) {
                if (truncated) {
                    warn("service: spill trace " + hello.spillPath +
                         " has a truncated tail");
                }
                pool_.routeEvents(session, spill.events.data(),
                                  spill.events.size());
                summary.spillReplayed = spill.events.size();
                summary.eventsProcessed += spill.events.size();
            } else {
                warn("service: cannot replay spill trace: " + error);
            }
        }
    }

    summary.eventsDropped = ring.droppedCount();
    summary.verdict = pool_.closeSession(session, external);
    summary.aborted = !sawBye;

    if (sawBye) {
        BugCollector bugs;
        for (const BugReport &bug : summary.verdict.bugs)
            bugs.report(bug);
        ReportBody report;
        report.bugs = summary.verdict.bugs;
        report.eventsProcessed = summary.eventsProcessed;
        report.eventsDropped = summary.eventsDropped;
        report.json = reportToJson(bugs, summary.verdict.stats);
        sendMessage(fd, MsgType::Report, report.serialize());
    }
    ::close(fd);

    {
        std::lock_guard<std::mutex> lock(summariesMutex_);
        summaries_.push_back(std::move(summary));
    }
    sessionDone_.notify_all();
}

} // namespace pmdb
