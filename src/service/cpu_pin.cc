#include "service/cpu_pin.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pmdb
{

std::size_t
availableCores()
{
#if defined(__linux__)
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (::sched_getaffinity(0, sizeof(mask), &mask) == 0) {
        const int count = CPU_COUNT(&mask);
        if (count > 0)
            return static_cast<std::size_t>(count);
    }
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

bool
pinThreadToCore(std::thread &thread, std::size_t core)
{
#if defined(__linux__)
    // Pin to the (core % n)-th *allowed* core, so pinning composes
    // with container affinity masks that do not start at CPU 0.
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (::sched_getaffinity(0, sizeof(allowed), &allowed) != 0)
        return false;
    const int count = CPU_COUNT(&allowed);
    if (count <= 0)
        return false;
    std::size_t rank = core % static_cast<std::size_t>(count);
    int target = -1;
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
        if (!CPU_ISSET(cpu, &allowed))
            continue;
        if (rank == 0) {
            target = cpu;
            break;
        }
        --rank;
    }
    if (target < 0)
        return false;
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(target, &one);
    return ::pthread_setaffinity_np(thread.native_handle(),
                                    sizeof(one), &one) == 0;
#else
    (void)thread;
    (void)core;
    return false;
#endif
}

} // namespace pmdb
