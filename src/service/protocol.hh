/**
 * @file
 * Wire protocol of the out-of-process detection service.
 *
 * A client session uses two channels:
 *
 *  - a **control plane** over a Unix-domain socket carrying framed
 *    messages (MsgHeader + payload): handshake, interned-name sync,
 *    externally detected bugs, shutdown, and the final report;
 *  - a **data plane**: a shared-memory single-producer/single-consumer
 *    event ring (see spsc_ring.hh) through which the instrumented
 *    event stream flows without any per-event syscall.
 *
 * Name-sync ordering contract: the client sends InternName and waits
 * for NameAck *before* pushing the first ring event that references
 * the name. The daemon enqueues the name to its shard workers before
 * acknowledging, so a shard always interns a name before it processes
 * an event referencing it.
 *
 * All integers are host-endian (client and daemon share the machine —
 * they already share memory).
 */

#ifndef PMDB_SERVICE_PROTOCOL_HH
#define PMDB_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/bug.hh"
#include "core/config.hh"

namespace pmdb
{

/** Protocol version; bumped on any wire-incompatible change.
 *  v2: HelloBody gained the shared-pool membership fields. */
constexpr std::uint32_t serviceProtocolVersion = 2;

/** Session identifier assigned by the daemon. */
using SessionId = std::uint32_t;

/** Control-plane message types. */
enum class MsgType : std::uint32_t
{
    /** client → daemon: open a session (HelloBody). */
    Hello = 1,
    /** daemon → client: session accepted (u32 sessionId). */
    Welcome = 2,
    /** client → daemon: interned name (u32 id, string). */
    InternName = 3,
    /** daemon → client: name delivered to shards (u32 id). */
    NameAck = 4,
    /** client → daemon: externally detected bug (packed BugReport). */
    ReportBug = 5,
    /** client → daemon: stream complete (u64 pushed, u64 spilled). */
    Bye = 6,
    /** daemon → client: final report (packed bugs + stats + JSON). */
    Report = 7,
    /** either direction: fatal error (string). */
    Error = 8,
};

/** Framing header preceding every control-plane payload. */
struct MsgHeader
{
    std::uint32_t type = 0;
    std::uint32_t length = 0;
};

/** What the producer does when the event ring is full (backpressure). */
enum class SlowConsumerPolicy : std::uint32_t
{
    /** Wait (yield/sleep) until the consumer frees a slot. */
    Block = 0,
    /** Discard the event and count it in the ring's drop counter. */
    Drop = 1,
    /**
     * Divert to an append-only stream trace file. Once the first event
     * spills, *all* subsequent events spill too, so the daemon can
     * replay the file after the ring drains and still observe every
     * event in program order.
     */
    Spill = 2,
};

const char *toString(SlowConsumerPolicy policy);

/** Parse a policy name (block|drop|spill). */
bool parseSlowConsumerPolicy(const std::string &name,
                             SlowConsumerPolicy *out);

/** Append-only little serializer for variable-length payloads. */
class WireWriter
{
  public:
    template <typename T>
    void
    put(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *bytes = reinterpret_cast<const std::uint8_t *>(&value);
        buf_.insert(buf_.end(), bytes, bytes + sizeof(T));
    }

    void
    putString(const std::string &text)
    {
        put(static_cast<std::uint32_t>(text.size()));
        buf_.insert(buf_.end(), text.begin(), text.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Cursor-based reader matching WireWriter. Reads fail-soft: ok()
 *  turns false on underflow and subsequent reads return zeros. */
class WireReader
{
  public:
    explicit WireReader(const std::vector<std::uint8_t> &buf)
        : buf_(buf)
    {
    }

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        if (pos_ + sizeof(T) > buf_.size()) {
            ok_ = false;
            return value;
        }
        std::memcpy(&value, buf_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    std::string
    getString()
    {
        const auto len = get<std::uint32_t>();
        if (pos_ + len > buf_.size()) {
            ok_ = false;
            return {};
        }
        std::string text(reinterpret_cast<const char *>(buf_.data()) +
                             pos_,
                         len);
        pos_ += len;
        return text;
    }

    bool ok() const { return ok_; }

  private:
    const std::vector<std::uint8_t> &buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Hello payload: everything the daemon needs to mirror the client's
 *  in-process detector configuration. */
struct HelloBody
{
    std::uint32_t version = serviceProtocolVersion;
    PersistencyModel model = PersistencyModel::Epoch;
    SlowConsumerPolicy policy = SlowConsumerPolicy::Block;
    /** Order-spec text (OrderSpec::fromText grammar); may be empty. */
    std::string orderSpecText;
    /** Path of the client-created shared-memory ring file. */
    std::string ringPath;
    /** Path of the spill trace (empty unless policy == Spill). */
    std::string spillPath;
    /**
     * Path of the multi-writer shared pool this session maps (empty for
     * ordinary single-writer sessions). Sessions announcing the same
     * path form a cross-session detection group: the daemon's
     * CrossprocEngine merges their event streams by global clock ticket
     * and runs the inter-writer rules when the whole group completes.
     */
    std::string sharedPoolPath;
    /** This session's writer id within the shared pool (1-based). */
    std::uint32_t sharedWriterId = 0;

    std::vector<std::uint8_t> serialize() const;
    static bool deserialize(const std::vector<std::uint8_t> &payload,
                            HelloBody *out);
};

/** Bye payload: producer-side stream accounting. */
struct ByeBody
{
    /** Events pushed into the ring. */
    std::uint64_t ringEvents = 0;
    /** Events diverted to the spill file (Spill policy only). */
    std::uint64_t spillEvents = 0;

    std::vector<std::uint8_t> serialize() const;
    static bool deserialize(const std::vector<std::uint8_t> &payload,
                            ByeBody *out);
};

/** Final report payload: the session's merged verdict. */
struct ReportBody
{
    std::vector<BugReport> bugs;
    /** Events the daemon consumed (ring + spill replay). */
    std::uint64_t eventsProcessed = 0;
    /** Events lost to the Drop policy. */
    std::uint64_t eventsDropped = 0;
    /** Ready-to-print JSON document (reportToJson shape). */
    std::string json;

    std::vector<std::uint8_t> serialize() const;
    static bool deserialize(const std::vector<std::uint8_t> &payload,
                            ReportBody *out);
};

/** Serialize one BugReport into @p out (shared by ReportBug/Report). */
void putBugReport(WireWriter &out, const BugReport &bug);

/** Inverse of putBugReport. */
BugReport getBugReport(WireReader &in);

} // namespace pmdb

#endif // PMDB_SERVICE_PROTOCOL_HH
