/**
 * @file
 * Client side of the detection service: a TraceSink that ships the
 * instrumented event stream to a pmdbd daemon instead of running a
 * detector in-process.
 *
 * Attach a RemoteSink to a PmRuntime like any detector; events
 * accumulate in a client-side EventBatch (the PR-1 batch machinery)
 * and cross the shared-memory ring (spsc_ring.hh) as whole batch
 * frames with the configured slow-consumer policy. Names and
 * externally detected bugs go over the control socket, and finish()
 * flushes the pending batch, completes the session and returns the
 * daemon's merged report.
 */

#ifndef PMDB_SERVICE_REMOTE_SINK_HH
#define PMDB_SERVICE_REMOTE_SINK_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "core/bug.hh"
#include "service/protocol.hh"
#include "service/spsc_ring.hh"
#include "trace/batch.hh"
#include "trace/sink.hh"
#include "trace/trace_file.hh"

namespace pmdb
{

/** TraceSink speaking the service ring protocol. */
class RemoteSink : public TraceSink
{
  public:
    struct Options
    {
        /** Daemon control socket. */
        std::string socketPath;
        /** Where to create this session's ring file. */
        std::string ringPath;
        /** Ring capacity in events — the producer's credits. */
        std::uint32_t ringSlots = 4096;
        /**
         * Client-side accumulation batch: events are published into
         * the ring in frames of up to this many events, so the shared
         * cursors are touched once per frame instead of once per
         * event. Clamped to the ring capacity.
         */
        std::uint32_t batchEvents = defaultBatchCapacity;
        SlowConsumerPolicy policy = SlowConsumerPolicy::Block;
        /** Spill trace path (required for the Spill policy). */
        std::string spillPath;
        /** Mirrors the in-process DebuggerConfig the daemon builds. */
        PersistencyModel model = PersistencyModel::Epoch;
        std::string orderSpecText;
        /** connectUnix retry budget (daemon may still be starting). */
        int connectTimeoutMs = 2000;
        /**
         * Multi-writer shared pool this client maps (empty = ordinary
         * session). Announced in the Hello so the daemon groups this
         * session with the pool's other writers for cross-session
         * detection.
         */
        std::string sharedPoolPath;
        /** Writer id within the shared pool (1-based). */
        std::uint32_t sharedWriterId = 0;
    };

    RemoteSink() = default;
    ~RemoteSink() override;

    RemoteSink(const RemoteSink &) = delete;
    RemoteSink &operator=(const RemoteSink &) = delete;

    /** Create the ring, connect and complete the Hello handshake. */
    bool connect(const Options &options, std::string *error = nullptr);

    bool connected() const { return fd_ >= 0; }

    SessionId sessionId() const { return session_; }

    /** @name TraceSink */
    /** @{ */
    void attached(const NameTable &names) override { names_ = &names; }
    void handle(const Event &event) override;
    void handleBatch(const Event *events, std::size_t count) override;

    /**
     * The sink reads the runtime's live NameTable while interning
     * names ahead of the events that reference them, so delivery must
     * stay on the instrumenting thread.
     */
    bool requiresSynchronousDelivery() const override { return true; }
    /** @} */

    /**
     * Funnel an externally detected bug (the manual cross-failure
     * check) to the daemon, mirroring PmDebugger::reportBug.
     */
    void reportBug(const BugReport &report);

    /**
     * Flush the pending batch, mark the stream complete, send Bye and
     * block for the daemon's report. The sink is disconnected
     * afterwards.
     */
    bool finish(ReportBody *out, std::string *error = nullptr);

    std::uint64_t ringEvents() const { return pushed_; }
    std::uint64_t spillEvents() const { return spilled_; }
    std::uint64_t droppedEvents() const { return dropped_; }
    /** Batch frames published into the ring. */
    std::uint64_t ringFrames() const { return frames_; }

  private:
    bool ensureNamesSent(std::uint32_t name_id);
    void append(const Event &event);
    void flushBatch();
    void disconnect();

    EventRing ring_;
    EventBatch batch_{defaultBatchCapacity};
    TraceStreamWriter spill_;
    Options options_;
    const NameTable *names_ = nullptr;
    int fd_ = -1;
    SessionId session_ = 0;
    std::uint32_t namesSent_ = 0;
    std::uint64_t pushed_ = 0;
    std::uint64_t spilled_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t frames_ = 0;
    /** Once spilling starts, everything spills (order preservation). */
    bool spilling_ = false;
    bool dead_ = false;
    std::mutex mutex_;
};

} // namespace pmdb

#endif // PMDB_SERVICE_REMOTE_SINK_HH
