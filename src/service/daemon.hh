/**
 * @file
 * The detection-service daemon (pmdbd): accepts trace streams from
 * multiple concurrent clients over per-client shared-memory event
 * rings plus a Unix-domain-socket control plane, feeds them through
 * an address-sharded pool of detector workers, and replies to each
 * client with its merged bug report. Embeddable: tests and the bench
 * run a ServiceDaemon on a thread inside the same process; the pmdbd
 * tool wraps one in a main().
 */

#ifndef PMDB_SERVICE_DAEMON_HH
#define PMDB_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hh"
#include "service/shard.hh"

namespace pmdb
{

/** Daemon configuration. */
struct ServiceConfig
{
    /** Control-plane socket path. */
    std::string socketPath;
    /** Detector shard-pool shape. */
    ShardPoolConfig pool;
};

/** Per-session attribution kept by the aggregated collector. */
struct SessionSummary
{
    SessionId id = 0;
    /** Merged per-session verdict (bugs + stats). */
    SessionVerdict verdict;
    std::uint64_t eventsProcessed = 0;
    std::uint64_t eventsDropped = 0;
    std::uint64_t spillReplayed = 0;
    /** Client vanished before Bye; no report was sent. */
    bool aborted = false;
};

/** The out-of-process detection daemon. */
class ServiceDaemon
{
  public:
    explicit ServiceDaemon(ServiceConfig config);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Bind the socket, start the shard pool and the accept loop. */
    bool start(std::string *error = nullptr);

    /** Stop accepting, join session handlers and workers. */
    void stop();

    /**
     * Block until @p count sessions have completed (served or
     * aborted). Returns false if @p timeout_ms (>= 0) elapses first.
     */
    bool waitForSessions(std::size_t count, int timeout_ms = -1);

    /** Completed sessions so far. */
    std::size_t completedSessions() const;

    /** Snapshot of per-session summaries (completed sessions only). */
    std::vector<SessionSummary> summaries() const;

    /**
     * Aggregated JSON across all completed sessions: per-session bug
     * reports with attribution, plus daemon-level counters.
     */
    std::string aggregatedJson() const;

    const std::string &socketPath() const { return config_.socketPath; }

  private:
    void acceptLoop();
    void serveSession(int fd);

    ServiceConfig config_;
    ShardPool pool_;
    int listenFd_ = -1;
    std::thread acceptThread_;
    std::vector<std::thread> sessionThreads_;
    std::mutex sessionThreadsMutex_;

    std::atomic<bool> stopping_{false};
    std::atomic<SessionId> nextSession_{1};

    mutable std::mutex summariesMutex_;
    std::condition_variable sessionDone_;
    std::vector<SessionSummary> summaries_;
    bool running_ = false;
};

} // namespace pmdb

#endif // PMDB_SERVICE_DAEMON_HH
