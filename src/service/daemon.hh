/**
 * @file
 * The detection-service daemon (pmdbd): accepts trace streams from
 * multiple concurrent clients over per-client shared-memory event
 * rings plus a Unix-domain-socket control plane, feeds them through
 * a work-stealing pool of detector workers, and replies to each
 * client with its merged bug report.
 *
 * Ingest path (the PR-6 rework): instead of one reader thread per
 * session, a fixed pool of **poller** threads multiplexes every
 * client ring. Each poller sweeps the sessions assigned to it —
 * pending control messages, then a whole-frame ring drain, then
 * routing into the shard pool's bounded per-(session,shard) queues —
 * with adaptive spin→sleep backoff when a full sweep makes no
 * progress. Thread count is therefore fixed by configuration
 * (pollers + shard workers), not by client count, so concurrent
 * sessions compound instead of contending.
 *
 * Embeddable: tests and the bench run a ServiceDaemon on a thread
 * inside the same process; the pmdbd tool wraps one in a main().
 */

#ifndef PMDB_SERVICE_DAEMON_HH
#define PMDB_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crossproc/engine.hh"
#include "service/protocol.hh"
#include "service/shard.hh"
#include "telemetry/metrics.hh"

namespace pmdb
{

/** Daemon configuration. */
struct ServiceConfig
{
    /** Control-plane socket path. */
    std::string socketPath;
    /** Detector shard-pool shape. */
    ShardPoolConfig pool;
    /** Poller threads multiplexing the client rings. */
    std::size_t pollers = 1;
    /** Events drained from a ring per poll (>= one batch frame). */
    std::size_t drainEvents = 4096;
    /**
     * Pin pollers and shard workers round-robin to distinct cores
     * (pollers first, then workers). Opt-in: `pmdbd --pin-cores`.
     */
    bool pinCores = false;
    /**
     * When non-empty, serve live metric snapshots on this Unix socket
     * (`pmdbd --metrics-sock`): a connection sends one request line —
     * "json" or "prom" — and receives the snapshot in that format.
     * pmdb_stat is the bundled client.
     */
    std::string metricsSocketPath;
    /** Log a one-line ingest summary every N seconds (0 = off). */
    unsigned statsIntervalSec = 0;
    /** Enable span tracing and write Chrome trace JSON here at stop. */
    std::string traceOutPath;
};

/** Per-session attribution kept by the aggregated collector. */
struct SessionSummary
{
    SessionId id = 0;
    /** Merged per-session verdict (bugs + stats). */
    SessionVerdict verdict;
    std::uint64_t eventsProcessed = 0;
    std::uint64_t eventsDropped = 0;
    std::uint64_t spillReplayed = 0;
    /** Ring frames drained by the poller. */
    std::uint64_t batchesDrained = 0;
    /** Polls that found a full (session,shard) queue (backpressure). */
    std::uint64_t queueFullStalls = 0;
    /** Welcome-to-report wall time. */
    double seconds = 0.0;
    /** Client vanished before Bye; no report was sent. */
    bool aborted = false;
};

/** Daemon-level ingest counters (observability). */
struct IngestStats
{
    /** Poller sweeps over the session set. */
    std::uint64_t polls = 0;
    /** Sweeps that made no progress (idle). */
    std::uint64_t idlePolls = 0;
    /** idlePolls / polls; 0 when no polls have run. */
    double idleRatio() const
    {
        return polls ? static_cast<double>(idlePolls) /
                           static_cast<double>(polls)
                     : 0.0;
    }
};

/** The out-of-process detection daemon. */
class ServiceDaemon
{
  public:
    explicit ServiceDaemon(ServiceConfig config);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Bind the socket, start the shard pool and the poller pool. */
    bool start(std::string *error = nullptr);

    /** Stop accepting, drain sessions, join pollers and workers. */
    void stop();

    /**
     * Block until @p count sessions have completed (served or
     * aborted). Returns false if @p timeout_ms (>= 0) elapses first.
     */
    bool waitForSessions(std::size_t count, int timeout_ms = -1);

    /** Completed sessions so far. */
    std::size_t completedSessions() const;

    /** Snapshot of per-session summaries (completed sessions only). */
    std::vector<SessionSummary> summaries() const;

    /** Daemon-level poll counters. */
    IngestStats ingestStats() const;

    /** Per-shard execution counters (batches, events, steals). */
    std::vector<ShardStats> shardStats() const
    {
        return pool_.shardStats();
    }

    /**
     * Aggregated JSON across all completed sessions: per-session bug
     * reports with attribution and ingest counters, plus daemon-level
     * poller and shard counters and the cross-session group verdicts.
     */
    std::string aggregatedJson() const;

    /**
     * The unified metric view: the process-global telemetry registry
     * plus dynamic daemon state folded in under the same naming scheme
     * — poller counters ("pmdbd.polls"), per-shard execution counters
     * ("pmdbd.shard.events{shard=\"0\"}"), and per-session ingest
     * ("pmdbd.session.events{session=\"1\"}", completed sessions and a
     * racy monitoring-only read of live ones). Both the metrics
     * endpoint and aggregatedJson() render this one snapshot.
     */
    telemetry::MetricsSnapshot metricsSnapshot() const;

    /**
     * Verdicts of completed shared-pool groups (sessions that
     * announced the same sharedPoolPath in their Hello). Empty until
     * every member of a group has finished.
     */
    std::vector<CrossGroupResult> crossprocResults() const
    {
        return crossproc_.results();
    }

    const std::string &socketPath() const { return config_.socketPath; }

  private:
    struct ActiveSession;
    struct Poller;

    void acceptLoop();
    void metricsLoop();
    void statsLoop();
    void pollerLoop(Poller &poller);
    /** One sweep step for one session; true when progress was made. */
    bool pollSession(const std::shared_ptr<ActiveSession> &session);
    bool finishHandshake(ActiveSession &session);
    void beginClose(const std::shared_ptr<ActiveSession> &session,
                    bool aborted);

    ServiceConfig config_;
    ShardPool pool_;
    /** Cross-session rule engine for shared-pool session groups. */
    CrossprocEngine crossproc_;
    int listenFd_ = -1;
    int metricsFd_ = -1;
    std::thread acceptThread_;
    std::thread metricsThread_;
    std::thread statsThread_;
    std::vector<std::unique_ptr<Poller>> pollers_;
    std::atomic<std::size_t> nextPoller_{0};

    std::atomic<bool> stopping_{false};
    std::atomic<SessionId> nextSession_{1};

    /** Sessions whose async close has not completed yet. */
    std::atomic<std::size_t> outstandingCloses_{0};
    std::mutex closesMutex_;
    std::condition_variable closesDone_;

    mutable std::mutex summariesMutex_;
    std::condition_variable sessionDone_;
    std::vector<SessionSummary> summaries_;
    bool running_ = false;
};

} // namespace pmdb

#endif // PMDB_SERVICE_DAEMON_HH
