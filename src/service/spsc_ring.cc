#include "service/spsc_ring.hh"

#include <cstdio>
#include <cstring>
#include <new>
#include <type_traits>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pmdb
{

namespace
{

static_assert(std::is_trivially_copyable_v<Event>,
              "ring slots are raw shared memory");

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

std::size_t
ringBytes(std::uint32_t slots)
{
    return sizeof(RingHeader) +
           static_cast<std::size_t>(slots) * sizeof(Event);
}

} // namespace

EventRing::~EventRing()
{
    close();
}

bool
EventRing::create(const std::string &path, std::uint32_t slots,
                  std::string *error)
{
    close();
    if (!slots)
        return fail(error, "ring needs at least one slot");
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    if (fd < 0)
        return fail(error, "cannot create ring file " + path);
    const std::size_t bytes = ringBytes(slots);
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        ::close(fd);
        return fail(error, "cannot size ring file " + path);
    }
    void *map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (map == MAP_FAILED)
        return fail(error, "cannot map ring file " + path);

    header_ = new (map) RingHeader;
    std::memcpy(header_->magic, ringMagic, sizeof(ringMagic));
    header_->slots = slots;
    header_->head.store(0, std::memory_order_relaxed);
    header_->tail.store(0, std::memory_order_relaxed);
    header_->dropped.store(0, std::memory_order_relaxed);
    header_->lastPublishNs.store(0, std::memory_order_relaxed);
    header_->producerDone.store(0, std::memory_order_release);
    slotsBase_ = reinterpret_cast<Event *>(
        reinterpret_cast<std::uint8_t *>(map) + sizeof(RingHeader));
    mapBytes_ = bytes;
    slots_ = slots;
    cachedTail_ = 0;
    cachedHead_ = 0;
    path_ = path;
    owner_ = true;
    return true;
}

bool
EventRing::open(const std::string &path, std::string *error)
{
    close();
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0)
        return fail(error, "cannot open ring file " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < sizeof(RingHeader)) {
        ::close(fd);
        return fail(error, "ring file too small: " + path);
    }
    const auto bytes = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return fail(error, "cannot map ring file " + path);

    auto *header = reinterpret_cast<RingHeader *>(map);
    if (std::memcmp(header->magic, ringMagic, sizeof(ringMagic)) != 0 ||
        !header->slots || ringBytes(header->slots) > bytes) {
        ::munmap(map, bytes);
        return fail(error, "not a ring file: " + path);
    }
    header_ = header;
    slotsBase_ = reinterpret_cast<Event *>(
        reinterpret_cast<std::uint8_t *>(map) + sizeof(RingHeader));
    mapBytes_ = bytes;
    slots_ = header->slots;
    cachedTail_ = header->tail.load(std::memory_order_relaxed);
    cachedHead_ = header->head.load(std::memory_order_relaxed);
    path_ = path;
    owner_ = false;
    return true;
}

void
EventRing::close()
{
    if (!header_)
        return;
    ::munmap(header_, mapBytes_);
    if (owner_)
        std::remove(path_.c_str());
    header_ = nullptr;
    slotsBase_ = nullptr;
    mapBytes_ = 0;
    slots_ = 0;
    cachedTail_ = 0;
    cachedHead_ = 0;
    owner_ = false;
}

std::size_t
EventRing::tryPushBatch(const Event *events, std::size_t count)
{
    const std::uint64_t head =
        header_->head.load(std::memory_order_relaxed);
    std::uint64_t free = slots_ - (head - cachedTail_);
    if (free < count) {
        // The cached tail makes the ring look too full for the whole
        // frame; pay the cross-line read and retry against the truth.
        cachedTail_ = header_->tail.load(std::memory_order_acquire);
        free = slots_ - (head - cachedTail_);
    }
    const std::size_t accept =
        count < free ? count : static_cast<std::size_t>(free);
    if (!accept)
        return 0;
    // The frame occupies [head, head + accept): at most two contiguous
    // spans of the slot array (one wrap).
    const std::size_t at = static_cast<std::size_t>(head % slots_);
    const std::size_t firstSpan =
        std::min<std::size_t>(accept, slots_ - at);
    std::memcpy(slotsBase_ + at, events, firstSpan * sizeof(Event));
    if (firstSpan < accept) {
        std::memcpy(slotsBase_, events + firstSpan,
                    (accept - firstSpan) * sizeof(Event));
    }
    header_->head.store(head + accept, std::memory_order_release);
    return accept;
}

std::size_t
EventRing::popBatch(Event *out, std::size_t max)
{
    const std::uint64_t tail =
        header_->tail.load(std::memory_order_relaxed);
    if (cachedHead_ == tail) {
        // Ring looks empty through the cache; read the shared head.
        cachedHead_ = header_->head.load(std::memory_order_acquire);
        if (cachedHead_ == tail)
            return 0;
    }
    std::size_t count = static_cast<std::size_t>(cachedHead_ - tail);
    if (count > max)
        count = max;
    const std::size_t at = static_cast<std::size_t>(tail % slots_);
    const std::size_t firstSpan =
        std::min<std::size_t>(count, slots_ - at);
    std::memcpy(out, slotsBase_ + at, firstSpan * sizeof(Event));
    if (firstSpan < count) {
        std::memcpy(out + firstSpan, slotsBase_,
                    (count - firstSpan) * sizeof(Event));
    }
    header_->tail.store(tail + count, std::memory_order_release);
    return count;
}

std::size_t
EventRing::size() const
{
    const std::uint64_t tail =
        header_->tail.load(std::memory_order_acquire);
    const std::uint64_t head =
        header_->head.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
}

void
EventRing::markProducerDone()
{
    header_->producerDone.store(1, std::memory_order_release);
}

bool
EventRing::producerDone() const
{
    return header_->producerDone.load(std::memory_order_acquire) != 0;
}

void
EventRing::countDrop()
{
    header_->dropped.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
EventRing::droppedCount() const
{
    return header_->dropped.load(std::memory_order_relaxed);
}

void
EventRing::stampPublish(std::uint64_t ns)
{
    header_->lastPublishNs.store(ns, std::memory_order_relaxed);
}

std::uint64_t
EventRing::lastPublishNs() const
{
    return header_->lastPublishNs.load(std::memory_order_relaxed);
}

} // namespace pmdb
