#include "service/spsc_ring.hh"

#include <cstdio>
#include <cstring>
#include <new>
#include <type_traits>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pmdb
{

namespace
{

static_assert(std::is_trivially_copyable_v<Event>,
              "ring slots are raw shared memory");

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

std::size_t
ringBytes(std::uint32_t slots)
{
    return sizeof(RingHeader) +
           static_cast<std::size_t>(slots) * sizeof(Event);
}

} // namespace

EventRing::~EventRing()
{
    close();
}

bool
EventRing::create(const std::string &path, std::uint32_t slots,
                  std::string *error)
{
    close();
    if (!slots)
        return fail(error, "ring needs at least one slot");
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    if (fd < 0)
        return fail(error, "cannot create ring file " + path);
    const std::size_t bytes = ringBytes(slots);
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        ::close(fd);
        return fail(error, "cannot size ring file " + path);
    }
    void *map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (map == MAP_FAILED)
        return fail(error, "cannot map ring file " + path);

    header_ = new (map) RingHeader;
    std::memcpy(header_->magic, ringMagic, sizeof(ringMagic));
    header_->slots = slots;
    header_->head.store(0, std::memory_order_relaxed);
    header_->tail.store(0, std::memory_order_relaxed);
    header_->dropped.store(0, std::memory_order_relaxed);
    header_->producerDone.store(0, std::memory_order_release);
    slotsBase_ = reinterpret_cast<Event *>(
        reinterpret_cast<std::uint8_t *>(map) + sizeof(RingHeader));
    mapBytes_ = bytes;
    slots_ = slots;
    path_ = path;
    owner_ = true;
    return true;
}

bool
EventRing::open(const std::string &path, std::string *error)
{
    close();
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0)
        return fail(error, "cannot open ring file " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < sizeof(RingHeader)) {
        ::close(fd);
        return fail(error, "ring file too small: " + path);
    }
    const auto bytes = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return fail(error, "cannot map ring file " + path);

    auto *header = reinterpret_cast<RingHeader *>(map);
    if (std::memcmp(header->magic, ringMagic, sizeof(ringMagic)) != 0 ||
        !header->slots || ringBytes(header->slots) > bytes) {
        ::munmap(map, bytes);
        return fail(error, "not a ring file: " + path);
    }
    header_ = header;
    slotsBase_ = reinterpret_cast<Event *>(
        reinterpret_cast<std::uint8_t *>(map) + sizeof(RingHeader));
    mapBytes_ = bytes;
    slots_ = header->slots;
    path_ = path;
    owner_ = false;
    return true;
}

void
EventRing::close()
{
    if (!header_)
        return;
    ::munmap(header_, mapBytes_);
    if (owner_)
        std::remove(path_.c_str());
    header_ = nullptr;
    slotsBase_ = nullptr;
    mapBytes_ = 0;
    slots_ = 0;
    owner_ = false;
}

Event &
EventRing::slot(std::uint64_t seq)
{
    return slotsBase_[seq % slots_];
}

bool
EventRing::tryPush(const Event &event)
{
    const std::uint64_t head =
        header_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail =
        header_->tail.load(std::memory_order_acquire);
    if (head - tail >= slots_)
        return false; // out of credits
    slot(head) = event;
    header_->head.store(head + 1, std::memory_order_release);
    return true;
}

std::size_t
EventRing::tryPop(Event *out, std::size_t max)
{
    const std::uint64_t tail =
        header_->tail.load(std::memory_order_relaxed);
    const std::uint64_t head =
        header_->head.load(std::memory_order_acquire);
    std::size_t count = static_cast<std::size_t>(head - tail);
    if (count > max)
        count = max;
    for (std::size_t i = 0; i < count; ++i)
        out[i] = slot(tail + i);
    if (count)
        header_->tail.store(tail + count, std::memory_order_release);
    return count;
}

std::size_t
EventRing::size() const
{
    const std::uint64_t tail =
        header_->tail.load(std::memory_order_acquire);
    const std::uint64_t head =
        header_->head.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
}

void
EventRing::markProducerDone()
{
    header_->producerDone.store(1, std::memory_order_release);
}

bool
EventRing::producerDone() const
{
    return header_->producerDone.load(std::memory_order_acquire) != 0;
}

void
EventRing::countDrop()
{
    header_->dropped.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
EventRing::droppedCount() const
{
    return header_->dropped.load(std::memory_order_relaxed);
}

} // namespace pmdb
