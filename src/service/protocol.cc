#include "service/protocol.hh"

namespace pmdb
{

const char *
toString(SlowConsumerPolicy policy)
{
    switch (policy) {
      case SlowConsumerPolicy::Block: return "block";
      case SlowConsumerPolicy::Drop:  return "drop";
      case SlowConsumerPolicy::Spill: return "spill";
    }
    return "?";
}

bool
parseSlowConsumerPolicy(const std::string &name, SlowConsumerPolicy *out)
{
    if (name == "block")
        *out = SlowConsumerPolicy::Block;
    else if (name == "drop")
        *out = SlowConsumerPolicy::Drop;
    else if (name == "spill")
        *out = SlowConsumerPolicy::Spill;
    else
        return false;
    return true;
}

std::vector<std::uint8_t>
HelloBody::serialize() const
{
    WireWriter out;
    out.put(version);
    out.put(static_cast<std::uint32_t>(model));
    out.put(static_cast<std::uint32_t>(policy));
    out.putString(orderSpecText);
    out.putString(ringPath);
    out.putString(spillPath);
    out.putString(sharedPoolPath);
    out.put(sharedWriterId);
    return out.bytes();
}

bool
HelloBody::deserialize(const std::vector<std::uint8_t> &payload,
                       HelloBody *out)
{
    WireReader in(payload);
    out->version = in.get<std::uint32_t>();
    out->model = static_cast<PersistencyModel>(in.get<std::uint32_t>());
    out->policy =
        static_cast<SlowConsumerPolicy>(in.get<std::uint32_t>());
    out->orderSpecText = in.getString();
    out->ringPath = in.getString();
    out->spillPath = in.getString();
    out->sharedPoolPath = in.getString();
    out->sharedWriterId = in.get<std::uint32_t>();
    return in.ok() && out->version == serviceProtocolVersion;
}

std::vector<std::uint8_t>
ByeBody::serialize() const
{
    WireWriter out;
    out.put(ringEvents);
    out.put(spillEvents);
    return out.bytes();
}

bool
ByeBody::deserialize(const std::vector<std::uint8_t> &payload,
                     ByeBody *out)
{
    WireReader in(payload);
    out->ringEvents = in.get<std::uint64_t>();
    out->spillEvents = in.get<std::uint64_t>();
    return in.ok();
}

void
putBugReport(WireWriter &out, const BugReport &bug)
{
    out.put(static_cast<std::uint8_t>(bug.type));
    out.put(static_cast<std::uint8_t>(bug.cause));
    out.put(bug.range.start);
    out.put(bug.range.end);
    out.put(bug.seq);
    out.putString(bug.detail);
    out.putString(bug.context);
}

BugReport
getBugReport(WireReader &in)
{
    BugReport bug;
    bug.type = static_cast<BugType>(in.get<std::uint8_t>());
    bug.cause = static_cast<DurabilityCause>(in.get<std::uint8_t>());
    bug.range.start = in.get<Addr>();
    bug.range.end = in.get<Addr>();
    bug.seq = in.get<SeqNum>();
    bug.detail = in.getString();
    bug.context = in.getString();
    return bug;
}

std::vector<std::uint8_t>
ReportBody::serialize() const
{
    WireWriter out;
    out.put(static_cast<std::uint32_t>(bugs.size()));
    for (const BugReport &bug : bugs)
        putBugReport(out, bug);
    out.put(eventsProcessed);
    out.put(eventsDropped);
    out.putString(json);
    return out.bytes();
}

bool
ReportBody::deserialize(const std::vector<std::uint8_t> &payload,
                        ReportBody *out)
{
    WireReader in(payload);
    const auto count = in.get<std::uint32_t>();
    out->bugs.clear();
    for (std::uint32_t i = 0; i < count && in.ok(); ++i)
        out->bugs.push_back(getBugReport(in));
    out->eventsProcessed = in.get<std::uint64_t>();
    out->eventsDropped = in.get<std::uint64_t>();
    out->json = in.getString();
    return in.ok();
}

} // namespace pmdb
