/**
 * @file
 * Address-range-sharded detector state served by a work-stealing
 * worker pool.
 *
 * The daemon partitions each session's event stream across shard
 * indices. Every (session, shard) pair owns an independent PmDebugger,
 * so shards never contend on bookkeeping state:
 *
 *  - **addressed** events (Store, Flush, TxLog) route by address
 *    stripe: shard = (addr / stripeBytes + sessionId) % shards. A
 *    stripe is large (64 MiB default), so a PM pool maps to one shard
 *    and a store and the CLF that persists it always land together;
 *  - **boundary** events (Fence, Epoch*, Strand*, JoinStrand,
 *    RegisterPmem, ProgramEnd) are broadcast: each shard observes
 *    every fence in order relative to its own addressed events, which
 *    is exactly what the fence-interval bookkeeping needs. Fences are
 *    shard-local — no cross-shard synchronization on the hot path;
 *  - sessions that need global order (a non-empty order spec, or the
 *    strand model's cross-strand rules) are **pinned**: their whole
 *    stream goes to one shard, the degenerate global-order barrier.
 *
 * Execution model (the PR-6 rework): detector state no longer lives
 * inside a dedicated per-shard thread. Each (session, shard) pair is a
 * **task queue** — a bounded FIFO of Open/Name/Events/Close tasks plus
 * the pair's NameTable + PmDebugger — and a shared pool of workers
 * leases ready queues. A worker prefers queues whose shard index
 * matches its own (cache affinity), but an idle worker **steals** a
 * ready queue of any other shard: since every queue carries its own
 * debugger, any worker may serve any queue, as long as at most one
 * worker holds a lease at a time. A lease drains the queue's whole
 * backlog, so stealing granularity is coarse and the per-task
 * bookkeeping cost stays amortized.
 *
 * Invariants this preserves:
 *  - **per-(session,shard) event order**: tasks enter each queue in
 *    stream order (one router per session), queues are FIFO, and the
 *    lease makes processing mutually exclusive — so each debugger
 *    observes exactly the subsequence an in-process detector would;
 *  - **bounded queues**: Events tasks respect a per-queue cap;
 *    tryRouteEvents refuses what does not fit and the caller retries
 *    later (backpressure propagates to the client ring). Control
 *    tasks (Open/Name/Close) bypass the cap — rejecting them could
 *    deadlock a session;
 *  - **merge determinism**: closeSession merges per-shard bug lists
 *    by a stable sequence-number sort with the session's home shard
 *    (the one stripe 0 maps to) first, then re-collects through a
 *    fresh BugCollector — preserving chronological order and
 *    first-detection dedup, independent of which worker ran which
 *    queue. Context-only rules (redundant epoch fence) are enabled on
 *    the home shard only so broadcasting cannot duplicate them.
 *
 * Why sharding pays even on one core: each shard's fence-interval
 * working set stays within its own fixed-capacity memory-location
 * array. A single bookkeeping space overflows the array on large
 * working sets and falls back to expensive AVL-tree insertion
 * (Section 4.2); partitioned spaces stay on the O(1) array path.
 */

#ifndef PMDB_SERVICE_SHARD_HH
#define PMDB_SERVICE_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/bug.hh"
#include "core/config.hh"
#include "core/debugger.hh"
#include "core/stats.hh"
#include "service/protocol.hh"
#include "trace/event.hh"

namespace pmdb
{

/** Shard-pool shape. */
struct ShardPoolConfig
{
    /** Number of shard indices == detector workers. */
    std::size_t shards = 1;
    /** Address-stripe granularity for routing addressed events. */
    Addr stripeBytes = 64ull << 20;
    /** Per-shard debugger array capacity (Section 4.1). */
    std::size_t arrayCapacity = 100000;
    /** Per-shard AVL lazy-merge threshold. */
    std::size_t mergeThreshold = 500;
    /** Max queued Events tasks per (session, shard) queue. */
    std::size_t queueCapacity = 64;
    /** Pin worker threads round-robin to cores, starting at pinBase. */
    bool pinCores = false;
    std::size_t pinBase = 0;
    /**
     * Test hook: a worker processing an Events task whose queue lives
     * on @p slowShard sleeps @p slowShardDelayUs first — a
     * deterministically slow detector for the work-stealing stress
     * test. Disabled by default.
     */
    std::size_t slowShard = ~static_cast<std::size_t>(0);
    std::uint32_t slowShardDelayUs = 0;
};

/** Merged per-session result returned by closeSession. */
struct SessionVerdict
{
    /** Deduplicated bugs in chronological (seq) order. */
    std::vector<BugReport> bugs;
    /** Aggregated bookkeeping statistics across shards. */
    DebuggerStats stats;
};

/** Per-shard execution counters (ingest observability). */
struct ShardStats
{
    /** Event batches (tasks) processed. */
    std::uint64_t batches = 0;
    /** Events processed. */
    std::uint64_t events = 0;
    /** Queue leases taken by a worker of a different shard index. */
    std::uint64_t steals = 0;
    /** Tasks currently enqueued across this shard's queues. */
    std::uint64_t queueDepth = 0;
};

/**
 * Routed per-shard event subsequences that did not fit their target
 * queues. Order within each part is stream order; the owner must
 * retry (tryFlushPending) before routing newer events of the same
 * session.
 */
struct PendingRoute
{
    std::vector<std::pair<std::size_t, std::vector<Event>>> parts;

    bool empty() const { return parts.empty(); }
};

/** Work-stealing pool over per-(session, shard) detector queues. */
class ShardPool
{
  public:
    explicit ShardPool(ShardPoolConfig config = {});
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    /** Spawn the worker threads. */
    void start();

    /** Drain queues and join the workers. */
    void stop();

    std::size_t shardCount() const { return config_.shards; }
    Addr stripeBytes() const { return config_.stripeBytes; }

    /**
     * Open a session on every shard. @p pinned forces the whole
     * stream to the session's home shard.
     */
    void openSession(SessionId session, const DebuggerConfig &config,
                     bool pinned);

    /**
     * Deliver one interned name to every shard of @p session. Ids must
     * arrive in intern order; the call returns after *enqueueing*, and
     * FIFO queues guarantee shards intern the name before any
     * subsequently routed event that references it.
     */
    void internName(SessionId session, std::uint32_t nameId,
                    std::string name);

    /**
     * Partition @p events into per-shard subsequences (preserving
     * relative order) and enqueue them, respecting the per-queue
     * Events cap. Parts that do not fit are appended to @p overflow
     * (created in shard order); returns true when everything was
     * enqueued. The caller must not route newer events for this
     * session until tryFlushPending has emptied @p overflow.
     */
    bool tryRouteEvents(SessionId session, const Event *events,
                        std::size_t count, PendingRoute *overflow);

    /** Retry a previous overflow; true once all parts are enqueued. */
    bool tryFlushPending(SessionId session, PendingRoute *overflow);

    /**
     * Blocking convenience for tests and the shard-scaling bench:
     * route and retry until everything is enqueued.
     */
    void routeEvents(SessionId session, const Event *events,
                     std::size_t count);

    /**
     * Enqueue the session's Close on every shard and return
     * immediately. When the last shard has finalized, the merged
     * verdict (per-shard bug lists merged home-first by stable seq
     * sort, external client-reported bugs last at equal seq, stats
     * aggregated) is passed to @p done on the finalizing worker's
     * thread. The session is released afterwards.
     */
    void closeSessionAsync(SessionId session,
                           std::vector<BugReport> external,
                           std::function<void(SessionVerdict &&)> done);

    /** Blocking closeSession: closeSessionAsync + wait. */
    SessionVerdict closeSession(SessionId session,
                                const std::vector<BugReport> &external);

    /** Addressed events whose range straddled a stripe boundary. */
    std::uint64_t straddleCount() const;

    /** Snapshot of per-shard execution counters. */
    std::vector<ShardStats> shardStats() const;

    /** Total queue leases stolen across shard indices. */
    std::uint64_t stealCount() const;

  private:
    struct CloseState;
    struct Task;
    struct SessionShard;

    std::size_t homeShard(SessionId session) const;
    std::size_t shardOf(SessionId session, Addr addr) const;
    SessionShard *queueOf(SessionId session, std::size_t shard);
    /** Enqueue under queuesMutex_; marks the queue ready and wakes a
     *  worker. Control tasks ignore the Events cap. */
    void enqueueLocked(SessionShard &queue, Task task);
    void markReadyLocked(SessionShard &queue);
    void workerLoop(std::size_t index);
    void runTask(SessionShard &queue, Task &task);
    void mergeAndFinish(CloseState &close);

    ShardPoolConfig config_;
    std::vector<std::thread> workers_;

    /** Guards queues_, ready_, and every SessionShard's queue/lease. */
    mutable std::mutex queuesMutex_;
    std::condition_variable wake_;
    /** (session, shard) → queue; key = session * shards + shard. */
    std::unordered_map<std::uint64_t, std::unique_ptr<SessionShard>>
        queues_;
    /** Ready (non-empty, unleased) queues per shard index. */
    std::vector<std::deque<SessionShard *>> ready_;
    bool stopping_ = false;

    /** pinned flag per open session, read by the routing thread. */
    std::unordered_map<SessionId, bool> pinned_;
    mutable std::mutex pinnedMutex_;

    std::atomic<std::uint64_t> straddles_{0};
    /** Per-shard counters on their own cache lines. */
    struct alignas(64) Counters
    {
        std::atomic<std::uint64_t> batches{0};
        std::atomic<std::uint64_t> events{0};
        std::atomic<std::uint64_t> steals{0};
        /** Live depth: bumped at enqueue, dropped when a lease takes
         *  the backlog (whole-backlog granularity, like the lease). */
        std::atomic<std::uint64_t> queueDepth{0};
    };
    std::vector<std::unique_ptr<Counters>> counters_;
    bool running_ = false;
};

} // namespace pmdb

#endif // PMDB_SERVICE_SHARD_HH
