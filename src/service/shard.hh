/**
 * @file
 * Address-range-sharded detector workers.
 *
 * The daemon partitions each session's event stream across a pool of
 * shard workers. Every (session, shard) pair owns an independent
 * PmDebugger, so shards never contend on bookkeeping state:
 *
 *  - **addressed** events (Store, Flush, TxLog) route by address
 *    stripe: shard = (addr / stripeBytes + sessionId) % shards. A
 *    stripe is large (64 MiB default), so a PM pool maps to one shard
 *    and a store and the CLF that persists it always land together;
 *  - **boundary** events (Fence, Epoch*, Strand*, JoinStrand,
 *    RegisterPmem, ProgramEnd) are broadcast: each shard observes
 *    every fence in order relative to its own addressed events, which
 *    is exactly what the fence-interval bookkeeping needs. Fences are
 *    shard-local — no cross-shard synchronization on the hot path;
 *  - sessions that need global order (a non-empty order spec, or the
 *    strand model's cross-strand rules) are **pinned**: their whole
 *    stream goes to one shard, the degenerate global-order barrier.
 *
 * Report identity: the session's *home* shard (the one stripe 0 maps
 * to) sees the full event subsequence of any single-stripe stream, so
 * its debugger behaves bit-identically to an in-process one. Rules
 * that fire from boundary context alone (redundant epoch fence) are
 * enabled only on the home shard so broadcasting cannot duplicate
 * them. closeSession() merges per-shard bug lists by a stable
 * sequence-number sort with the home shard first, then re-collects
 * through a fresh BugCollector — preserving both chronological order
 * and first-detection dedup semantics.
 *
 * Why sharding pays even on one core: each shard's fence-interval
 * working set stays within its own fixed-capacity memory-location
 * array. A single bookkeeping space overflows the array on large
 * working sets and falls back to expensive AVL-tree insertion
 * (Section 4.2); partitioned spaces stay on the O(1) array path.
 */

#ifndef PMDB_SERVICE_SHARD_HH
#define PMDB_SERVICE_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/bug.hh"
#include "core/config.hh"
#include "core/debugger.hh"
#include "core/stats.hh"
#include "service/protocol.hh"
#include "trace/event.hh"

namespace pmdb
{

/** Shard-pool shape. */
struct ShardPoolConfig
{
    /** Number of detector workers. */
    std::size_t shards = 1;
    /** Address-stripe granularity for routing addressed events. */
    Addr stripeBytes = 64ull << 20;
    /** Per-shard debugger array capacity (Section 4.1). */
    std::size_t arrayCapacity = 100000;
    /** Per-shard AVL lazy-merge threshold. */
    std::size_t mergeThreshold = 500;
};

/** Merged per-session result returned by closeSession. */
struct SessionVerdict
{
    /** Deduplicated bugs in chronological (seq) order. */
    std::vector<BugReport> bugs;
    /** Aggregated bookkeeping statistics across shards. */
    DebuggerStats stats;
};

/** Pool of shard workers with FIFO per-shard task queues. */
class ShardPool
{
  public:
    explicit ShardPool(ShardPoolConfig config = {});
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    /** Spawn the worker threads. */
    void start();

    /** Drain queues and join the workers. */
    void stop();

    std::size_t shardCount() const { return config_.shards; }
    Addr stripeBytes() const { return config_.stripeBytes; }

    /**
     * Open a session on every shard. @p pinned forces the whole
     * stream to the session's home shard.
     */
    void openSession(SessionId session, const DebuggerConfig &config,
                     bool pinned);

    /**
     * Deliver one interned name to every shard of @p session. Ids must
     * arrive in intern order; the call returns after *enqueueing*, and
     * FIFO queues guarantee shards intern the name before any
     * subsequently routed event that references it.
     */
    void internName(SessionId session, std::uint32_t nameId,
                    std::string name);

    /**
     * Partition @p events into per-shard subsequences (preserving
     * relative order) and enqueue them.
     */
    void routeEvents(SessionId session, const Event *events,
                     std::size_t count);

    /**
     * Finalize the session's debugger on every shard, merge the
     * per-shard bug lists and stats, and release the session. External
     * bugs (client-reported cross-failure findings) in @p external are
     * merged in seq order after same-seq detector bugs. Blocks until
     * all shards have finalized.
     */
    SessionVerdict closeSession(SessionId session,
                                const std::vector<BugReport> &external);

    /** Addressed events whose range straddled a stripe boundary. */
    std::uint64_t straddleCount() const;

  private:
    struct CloseBarrier;
    struct Task;
    struct Worker;

    std::size_t homeShard(SessionId session) const;
    std::size_t shardOf(SessionId session, Addr addr) const;
    void enqueue(std::size_t shard, Task task);
    void workerLoop(Worker &worker, std::size_t index);

    ShardPoolConfig config_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** pinned flag per open session, read by the routing thread. */
    std::unordered_map<SessionId, bool> pinned_;
    mutable std::mutex pinnedMutex_;
    std::atomic<std::uint64_t> straddles_{0};
    bool running_ = false;
};

} // namespace pmdb

#endif // PMDB_SERVICE_SHARD_HH
