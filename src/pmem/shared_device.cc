#include "pmem/shared_device.hh"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace pmdb
{

namespace
{

constexpr char poolMagic[8] = {'P', 'M', 'D', 'B', 'S', 'H', 'P', '1'};

/** Header page size; images start at the next page boundary. */
constexpr std::size_t headerBytes = 4096;

std::size_t
roundUpLines(std::size_t bytes)
{
    const std::size_t rem = bytes % cacheLineSize;
    return rem ? bytes + (cacheLineSize - rem) : bytes;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

/**
 * On-file header. All mutable fields are plain integers accessed
 * through std::atomic_ref — the file is mapped MAP_SHARED by several
 * processes and the spinlock / clock / coordination words synchronize
 * across them.
 */
struct SharedPmemPool::Header
{
    char magic[8];
    std::uint64_t dataSize;
    /** Global fence clock: tickets drawn so far. */
    std::uint64_t clock;
    /** Pool spinlock (0 free / 1 held). */
    std::uint32_t lockWord;
    std::uint32_t pad;
    /** Uninstrumented volatile scratch for process handshakes. */
    std::uint64_t coord[coordWords];
};

bool
SharedPmemPool::createPoolFile(const std::string &path,
                               std::size_t dataSize, std::string *error)
{
    static_assert(sizeof(Header) <= headerBytes,
                  "shared-pool header must fit its reserved page");
    const std::size_t data = roundUpLines(dataSize ? dataSize
                                                   : cacheLineSize);
    const std::size_t lines = data / cacheLineSize;
    const std::size_t total = headerBytes + 3 * data +
                              lines * sizeof(SharedLineState);

    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    if (fd < 0)
        return fail(error, "shared pool: cannot create " + path + ": " +
                               std::strerror(errno));
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
        const int err = errno;
        ::close(fd);
        return fail(error, "shared pool: ftruncate failed: " +
                               std::string(std::strerror(err)));
    }
    Header header = {};
    std::memcpy(header.magic, poolMagic, sizeof(poolMagic));
    header.dataSize = data;
    const bool ok = ::pwrite(fd, &header, sizeof(header), 0) ==
                    static_cast<ssize_t>(sizeof(header));
    ::close(fd);
    if (!ok)
        return fail(error, "shared pool: header write failed");
    return true;
}

SharedPmemPool::SharedPmemPool(PmRuntime &runtime,
                               const std::string &path,
                               std::uint32_t writerId)
    : runtime_(runtime), path_(path), writerId_(writerId)
{
    if (writerId == 0) {
        error_ = "shared pool: writer id must be >= 1";
        return;
    }
    fd_ = ::open(path.c_str(), O_RDWR);
    if (fd_ < 0) {
        error_ = "shared pool: cannot open " + path + ": " +
                 std::strerror(errno);
        return;
    }
    Header probe = {};
    if (::pread(fd_, &probe, sizeof(probe), 0) !=
            static_cast<ssize_t>(sizeof(probe)) ||
        std::memcmp(probe.magic, poolMagic, sizeof(poolMagic)) != 0) {
        error_ = path + " is not a PMDB shared pool (bad magic)";
        ::close(fd_);
        fd_ = -1;
        return;
    }
    dataSize_ = probe.dataSize;
    mapBytes_ = headerBytes + 3 * dataSize_ +
                lineCount() * sizeof(SharedLineState);
    void *map = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd_, 0);
    if (map == MAP_FAILED) {
        error_ = "shared pool: mmap failed: " +
                 std::string(std::strerror(errno));
        ::close(fd_);
        fd_ = -1;
        return;
    }
    base_ = static_cast<std::uint8_t *>(map);
    runtime_.registerPmem("shared_pool", 0,
                          static_cast<std::uint32_t>(dataSize_));
}

SharedPmemPool::~SharedPmemPool()
{
    if (base_)
        ::munmap(base_, mapBytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

SharedPmemPool::Header *
SharedPmemPool::header() const
{
    return reinterpret_cast<Header *>(base_);
}

std::uint8_t *
SharedPmemPool::volatileImage() const
{
    return base_ + headerBytes;
}

std::uint8_t *
SharedPmemPool::pendingImage() const
{
    return base_ + headerBytes + dataSize_;
}

std::uint8_t *
SharedPmemPool::durableImage() const
{
    return base_ + headerBytes + 2 * dataSize_;
}

SharedLineState *
SharedPmemPool::lineTable() const
{
    return reinterpret_cast<SharedLineState *>(base_ + headerBytes +
                                               3 * dataSize_);
}

void
SharedPmemPool::lock()
{
    std::atomic_ref<std::uint32_t> word(header()->lockWord);
    while (word.exchange(1, std::memory_order_acquire) != 0)
        ::sched_yield();
}

void
SharedPmemPool::unlock()
{
    std::atomic_ref<std::uint32_t> word(header()->lockWord);
    word.store(0, std::memory_order_release);
}

SeqNum
SharedPmemPool::ticket()
{
    // Lock already held: ticket order is exactly mutation order, so
    // merging per-session streams by ticket can never reorder the
    // operations relative to how shared memory actually changed.
    std::atomic_ref<std::uint64_t> clock(header()->clock);
    return clock.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
SharedPmemPool::checkBounds(Addr addr, std::size_t size,
                            const char *what) const
{
    if (!base_)
        panic(std::string("shared pool ") + what + ": pool not mapped (" +
              error_ + ")");
    if (addr + size > dataSize_ || addr + size < addr)
        panic(std::string("shared pool ") + what +
              " out of bounds: addr=" + std::to_string(addr) +
              " size=" + std::to_string(size));
}

void
SharedPmemPool::writeBytes(Addr addr, const void *data, std::size_t size,
                           ThreadId thread)
{
    checkBounds(addr, size, "store");
    lock();
    const SeqNum stamp = ticket();
    std::memcpy(volatileImage() + addr, data, size);
    const AddrRange range = AddrRange::fromSize(addr, size);
    SharedLineState *lines = lineTable();
    for (std::uint64_t line = cacheLineIndex(range.start);
         line <= cacheLineIndex(range.end - 1); ++line) {
        lines[line].phase |= SharedLineState::dirtyBit;
        lines[line].dirtyWriter = writerId_;
    }
    unlock();
    runtime_.setNextGlobal(stamp);
    runtime_.store(addr, static_cast<std::uint32_t>(size), thread);
}

void
SharedPmemPool::readBytes(Addr addr, void *out, std::size_t size,
                          ThreadId thread)
{
    checkBounds(addr, size, "load");
    lock();
    const SeqNum stamp = ticket();
    std::memcpy(out, volatileImage() + addr, size);
    unlock();
    runtime_.setNextGlobal(stamp);
    runtime_.load(addr, static_cast<std::uint32_t>(size), thread);
}

void
SharedPmemPool::peekBytes(Addr addr, void *out, std::size_t size) const
{
    checkBounds(addr, size, "peek");
    std::memcpy(out, volatileImage() + addr, size);
}

void
SharedPmemPool::flush(Addr addr, std::size_t size, FlushKind kind,
                      ThreadId thread)
{
    checkBounds(addr, size, "flush");
    const AddrRange range = AddrRange::fromSize(addr, size);
    // One CLF event per covered cache line, like PmemPool::flush; each
    // draws its own ticket so the merged stream orders them exactly.
    for (Addr line = cacheLineBase(range.start); line < range.end;
         line += cacheLineSize) {
        lock();
        const SeqNum stamp = ticket();
        const std::uint64_t index = cacheLineIndex(line);
        SharedLineState &state = lineTable()[index];
        if (state.phase & SharedLineState::dirtyBit) {
            // Queue the writeback: snapshot the line as it is *now*.
            std::memcpy(pendingImage() + index * cacheLineSize,
                        volatileImage() + index * cacheLineSize,
                        cacheLineSize);
            state.phase = (state.phase & ~SharedLineState::dirtyBit) |
                          SharedLineState::pendingBit;
            state.pendingWriter = writerId_;
        }
        unlock();
        runtime_.setNextGlobal(stamp);
        runtime_.flush(line, cacheLineSize, kind, thread);
    }
}

void
SharedPmemPool::fence(ThreadId thread)
{
    lock();
    const SeqNum stamp = ticket();
    // SFENCE completes writebacks *this writer* initiated; another
    // writer's unfenced CLFs stay pending, which is exactly the state
    // the cross-session rules reason about.
    SharedLineState *lines = lineTable();
    for (std::size_t index = 0; index < lineCount(); ++index) {
        SharedLineState &state = lines[index];
        if ((state.phase & SharedLineState::pendingBit) &&
            state.pendingWriter == writerId_) {
            std::memcpy(durableImage() + index * cacheLineSize,
                        pendingImage() + index * cacheLineSize,
                        cacheLineSize);
            state.phase &= ~SharedLineState::pendingBit;
            state.pendingWriter = 0;
        }
    }
    unlock();
    runtime_.setNextGlobal(stamp);
    runtime_.fence(thread);
}

void
SharedPmemPool::persist(Addr addr, std::size_t size, ThreadId thread)
{
    flush(addr, size, FlushKind::Clwb, thread);
    fence(thread);
}

void
SharedPmemPool::epochBegin(ThreadId thread)
{
    lock();
    const SeqNum stamp = ticket();
    unlock();
    runtime_.setNextGlobal(stamp);
    runtime_.epochBegin(thread);
}

void
SharedPmemPool::epochEnd(ThreadId thread)
{
    lock();
    const SeqNum stamp = ticket();
    unlock();
    runtime_.setNextGlobal(stamp);
    runtime_.epochEnd(thread);
}

void
SharedPmemPool::coordStore(std::size_t index, std::uint64_t value)
{
    if (index >= coordWords)
        panic("shared pool: coord index out of range");
    std::atomic_ref<std::uint64_t> word(header()->coord[index]);
    word.store(value, std::memory_order_release);
}

std::uint64_t
SharedPmemPool::coordLoad(std::size_t index) const
{
    if (index >= coordWords)
        panic("shared pool: coord index out of range");
    std::atomic_ref<std::uint64_t> word(header()->coord[index]);
    return word.load(std::memory_order_acquire);
}

void
SharedPmemPool::coordWait(std::size_t index, std::uint64_t expect) const
{
    while (coordLoad(index) != expect)
        ::sched_yield();
}

bool
SharedPmemPool::hasDirty(const AddrRange &range) const
{
    checkBounds(range.start, range.size(), "hasDirty");
    const SharedLineState *lines = lineTable();
    for (std::uint64_t line = cacheLineIndex(range.start);
         line <= cacheLineIndex(range.end - 1); ++line) {
        if (lines[line].phase & SharedLineState::dirtyBit)
            return true;
    }
    return false;
}

bool
SharedPmemPool::hasPendingFlush(const AddrRange &range) const
{
    checkBounds(range.start, range.size(), "hasPendingFlush");
    const SharedLineState *lines = lineTable();
    for (std::uint64_t line = cacheLineIndex(range.start);
         line <= cacheLineIndex(range.end - 1); ++line) {
        if (lines[line].phase & SharedLineState::pendingBit)
            return true;
    }
    return false;
}

bool
SharedPmemPool::isDurable(const AddrRange &range) const
{
    return !hasDirty(range) && !hasPendingFlush(range);
}

std::vector<std::uint8_t>
SharedPmemPool::crashImage() const
{
    if (!base_)
        panic("shared pool crashImage: pool not mapped");
    std::vector<std::uint8_t> image(dataSize_);
    // The spinlock keeps a concurrent fence from half-copying a line
    // into the durable image while we snapshot it.
    const_cast<SharedPmemPool *>(this)->lock();
    std::memcpy(image.data(), durableImage(), dataSize_);
    const_cast<SharedPmemPool *>(this)->unlock();
    return image;
}

SeqNum
SharedPmemPool::clockNow() const
{
    std::atomic_ref<std::uint64_t> clock(header()->clock);
    return clock.load(std::memory_order_relaxed);
}

} // namespace pmdb
