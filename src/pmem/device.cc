#include "pmem/device.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pmdb
{

PmemDevice::PmemDevice(std::size_t size)
    : volatileImage_(size, 0), persistedImage_(size, 0)
{
}

PmemDevice::PmemDevice(std::vector<std::uint8_t> image)
    : volatileImage_(image), persistedImage_(std::move(image))
{
}

PmemDevice::~PmemDevice()
{
    if (observer_)
        observer_->onDeviceDestroyed();
}

void
PmemDevice::checkBounds(Addr addr, std::size_t size, const char *what) const
{
    if (addr + size > volatileImage_.size() || addr + size < addr) {
        panic(std::string("PmemDevice: out-of-bounds ") + what + " at " +
              AddrRange::fromSize(addr, size).toString());
    }
}

void
PmemDevice::write(Addr addr, const void *data, std::size_t size)
{
    // Only the byte copy happens here, so concurrent writers touching
    // disjoint ranges are safe; dirty-line tracking is driven by the
    // Store event, which the runtime serializes (handle() below).
    checkBounds(addr, size, "write");
    std::memcpy(volatileImage_.data() + addr, data, size);
}

void
PmemDevice::markDirty(const AddrRange &range)
{
    if (range.empty())
        return;
    const std::uint64_t first = cacheLineIndex(range.start);
    const std::uint64_t last = cacheLineIndex(range.end - 1);
    for (std::uint64_t line = first; line <= last; ++line)
        dirtyLines_[line] = true;
}

void
PmemDevice::read(Addr addr, void *out, std::size_t size) const
{
    checkBounds(addr, size, "read");
    std::memcpy(out, volatileImage_.data() + addr, size);
}

std::uint8_t *
PmemDevice::rawVolatile(Addr addr)
{
    checkBounds(addr, 1, "raw access");
    return volatileImage_.data() + addr;
}

const std::uint8_t *
PmemDevice::rawVolatile(Addr addr) const
{
    checkBounds(addr, 1, "raw access");
    return volatileImage_.data() + addr;
}

void
PmemDevice::readPersisted(Addr addr, void *out, std::size_t size) const
{
    checkBounds(addr, size, "persisted read");
    std::memcpy(out, persistedImage_.data() + addr, size);
}

bool
PmemDevice::hasDirty(const AddrRange &range) const
{
    if (range.empty())
        return false;
    const std::uint64_t first = cacheLineIndex(range.start);
    const std::uint64_t last = cacheLineIndex(range.end - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        if (dirtyLines_.count(line))
            return true;
    }
    return false;
}

bool
PmemDevice::hasPendingFlush(const AddrRange &range) const
{
    if (range.empty())
        return false;
    const std::uint64_t first = cacheLineIndex(range.start);
    const std::uint64_t last = cacheLineIndex(range.end - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        if (pendingLines_.count(line))
            return true;
    }
    return false;
}

bool
PmemDevice::isDurable(const AddrRange &range) const
{
    return !hasDirty(range) && !hasPendingFlush(range);
}

void
PmemDevice::flushRange(const AddrRange &range, SeqNum seq)
{
    if (range.empty())
        return;
    const std::uint64_t first = cacheLineIndex(range.start);
    const std::uint64_t last = cacheLineIndex(range.end - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        // A CLF snapshots the line's current bytes as the writeback
        // payload. The line is no longer dirty; a later store re-dirties
        // it without cancelling the queued writeback.
        auto dirty = dirtyLines_.find(line);
        if (dirty == dirtyLines_.end() && !pendingLines_.count(line))
            continue;
        PendingLine snapshot;
        snapshot.flushSeq = seq;
        const Addr base = line * cacheLineSize;
        std::memcpy(snapshot.data.data(), volatileImage_.data() + base,
                    cacheLineSize);
        pendingLines_[line] = snapshot;
        if (dirty != dirtyLines_.end())
            dirtyLines_.erase(dirty);
        if (observer_)
            observer_->onLineQueued(line, pendingLines_[line]);
    }
}

void
PmemDevice::drainPending()
{
    for (const auto &[line, snapshot] : pendingLines_) {
        const Addr base = line * cacheLineSize;
        std::memcpy(persistedImage_.data() + base, snapshot.data.data(),
                    cacheLineSize);
    }
    pendingLines_.clear();
}

void
PmemDevice::handle(const Event &event)
{
    switch (event.kind) {
      case EventKind::Store:
        markDirty(event.range());
        break;
      case EventKind::Flush:
        flushRange(event.range(), event.seq);
        break;
      case EventKind::EpochBegin:
        ++epochDepth_;
        break;
      case EventKind::EpochEnd:
        if (epochDepth_ > 0)
            --epochDepth_;
        if (observer_)
            observer_->onBoundary(event, epochDepth_);
        drainPending();
        break;
      case EventKind::Fence:
      case EventKind::JoinStrand:
        // All of these act as durability barriers for queued writebacks.
        if (observer_)
            observer_->onBoundary(event, epochDepth_);
        drainPending();
        break;
      default:
        break;
    }
}

void
PmemDevice::reset()
{
    std::fill(volatileImage_.begin(), volatileImage_.end(), 0);
    std::fill(persistedImage_.begin(), persistedImage_.end(), 0);
    dirtyLines_.clear();
    pendingLines_.clear();
    epochDepth_ = 0;
}

std::vector<std::uint8_t>
CrashSimulator::crashImage(CrashPolicy policy, std::uint64_t seed) const
{
    std::vector<std::uint8_t> image = device_.persistedImage_;
    if (policy == CrashPolicy::DropPending)
        return image;

    Rng rng(seed);
    for (const auto &[line, snapshot] : device_.pendingLines_) {
        const bool lands =
            policy == CrashPolicy::CommitPending || rng.nextBool(0.5);
        if (lands) {
            const Addr base = line * cacheLineSize;
            std::memcpy(image.data() + base, snapshot.data.data(),
                        cacheLineSize);
        }
    }
    return image;
}

std::vector<std::uint8_t>
CrashSimulator::partialImage(
    const std::vector<std::uint64_t> &landed_lines) const
{
    std::vector<std::uint8_t> image = device_.persistedImage_;
    for (std::uint64_t line : landed_lines) {
        auto it = device_.pendingLines_.find(line);
        if (it == device_.pendingLines_.end())
            continue;
        std::memcpy(image.data() + line * cacheLineSize,
                    it->second.data.data(), cacheLineSize);
    }
    return image;
}

} // namespace pmdb
