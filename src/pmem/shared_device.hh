/**
 * @file
 * Multi-writer shared persistent-memory pool (CXL-era deployment shape).
 *
 * PmemDevice models one process's view of PM: its volatile image is
 * private and its persistence state (dirty lines, pending writebacks,
 * durable image) is derived from that one process's flush/fence
 * history. "Rethinking PM Crash Consistency in the CXL Era" (PAPERS.md)
 * argues the coming deployment shape is different: a pool *mapped by
 * several writer processes at once*, where a crash image must be
 * consistent with every writer's persistence history — state no single
 * process (and no per-session detector) can see alone.
 *
 * SharedPmemPool is that shape. The pool is a file mmap'd MAP_SHARED by
 * every writer, laid out as:
 *
 *   [ header | volatile image | pending image | durable image | lines ]
 *
 *  - the **volatile image** is the program-visible bytes — writers see
 *    each other's stores immediately, like two processes mapping one
 *    CXL-attached region;
 *  - the **pending image** holds flush-time line snapshots (a CLF
 *    initiates a writeback of the bytes as they were at flush time);
 *  - the **durable image** is what has provably reached the
 *    persistence domain: a writer's SFENCE completes *that writer's*
 *    pending writebacks into it, so the durable image is at all times
 *    consistent with both writers' fence histories and crashImage()
 *    can be materialized by any process (or the driver, post-mortem);
 *  - the **line table** records per-line dirty/pending state with the
 *    writer that dirtied / flushed it, mirrored by the cross-session
 *    rule engine (src/crossproc/rules.hh) when it replays the merged
 *    event stream.
 *
 * The header also carries the **global fence clock**: every
 * instrumented operation draws a monotone ticket from it *inside the
 * pool spinlock, before the memory mutation is published*, and arms the
 * local PmRuntime so the next dispatched event carries the ticket in
 * Event::global. Ticket order therefore never inverts the order of the
 * shared-memory operations the tickets describe, and the daemon-side
 * engine can merge the per-session streams into one total order by
 * sorting on Event::global alone.
 *
 * Reads come in two flavors, and the distinction matters:
 *
 *  - readBytes()/load<T>() are *instrumented*: they draw a ticket and
 *    emit an EventKind::Load event. Use them for every read whose
 *    value feeds program logic — the cross-session rules need to see
 *    when one writer observes another's data.
 *  - peek<T>() and the coord*() words are *uninstrumented*: no ticket,
 *    no event. peek is for spin-polling a location before the real
 *    instrumented read (polling would otherwise flood the trace with
 *    nondeterministically many Load events and destroy run-to-run
 *    report identity); the coord words live in the header — outside
 *    the persistent region entirely — and exist for test/workload
 *    process handshakes (turn-taking), which are volatile scratch and
 *    deliberately invisible to detection.
 */

#ifndef PMDB_PMEM_SHARED_DEVICE_HH
#define PMDB_PMEM_SHARED_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/runtime.hh"

namespace pmdb
{

/** Per-cache-line shared state; lives in the mapped file. */
struct SharedLineState
{
    /** Bit 0: dirty (stored, not yet flushed). Bit 1: pending. */
    std::uint32_t phase = 0;
    /** Writer that last dirtied the line (0 = never dirtied). */
    std::uint32_t dirtyWriter = 0;
    /** Writer whose CLF queued the pending snapshot (0 = none). */
    std::uint32_t pendingWriter = 0;
    std::uint32_t pad = 0;

    static constexpr std::uint32_t dirtyBit = 1u << 0;
    static constexpr std::uint32_t pendingBit = 1u << 1;
};

/**
 * A persistent pool shared by multiple writer processes.
 *
 * Not a TraceSink: the pool *is* the device (it mutates the shared
 * images directly under its spinlock) and emits the instrumented
 * events itself, with explicit global-clock stamps. Attaching a
 * per-process PmemDevice on top would model a private cache each — the
 * opposite of the shared-mapping semantics modelled here.
 */
class SharedPmemPool
{
  public:
    /** Number of uninstrumented coordination words in the header. */
    static constexpr std::size_t coordWords = 16;

    /**
     * Create the pool file at @p path with @p dataSize bytes of
     * zeroed persistent data (rounded up to whole cache lines).
     * Idempotence is deliberate *not* provided: an existing file is
     * truncated, so stale state from a previous run cannot leak in.
     */
    static bool createPoolFile(const std::string &path,
                               std::size_t dataSize,
                               std::string *error = nullptr);

    /**
     * Map an existing pool file as writer @p writerId (1-based; each
     * concurrent writer must use a distinct id). Registers the region
     * with @p runtime as "shared_pool" so per-session detectors track
     * this writer's own flush/fence discipline over it.
     */
    SharedPmemPool(PmRuntime &runtime, const std::string &path,
                   std::uint32_t writerId);

    ~SharedPmemPool();

    SharedPmemPool(const SharedPmemPool &) = delete;
    SharedPmemPool &operator=(const SharedPmemPool &) = delete;

    bool valid() const { return base_ != nullptr; }
    const std::string &error() const { return error_; }

    PmRuntime &runtime() { return runtime_; }
    std::uint32_t writerId() const { return writerId_; }
    const std::string &path() const { return path_; }
    std::size_t size() const { return dataSize_; }

    /** @name Instrumented (ticketed) data path. */
    /** @{ */

    /** Store @p size bytes at @p addr; emits a ticketed Store event. */
    void writeBytes(Addr addr, const void *data, std::size_t size,
                    ThreadId thread = 0);

    /** Read @p size bytes at @p addr; emits a ticketed Load event. */
    void readBytes(Addr addr, void *out, std::size_t size,
                   ThreadId thread = 0);

    template <typename T>
    void
    store(Addr addr, const T &value, ThreadId thread = 0)
    {
        writeBytes(addr, &value, sizeof(T), thread);
    }

    template <typename T>
    T
    load(Addr addr, ThreadId thread = 0)
    {
        T value{};
        readBytes(addr, &value, sizeof(T), thread);
        return value;
    }

    /** CLF over [addr, addr+size): one ticketed Flush per line. */
    void flush(Addr addr, std::size_t size,
               FlushKind kind = FlushKind::Clwb, ThreadId thread = 0);

    /** SFENCE: completes *this writer's* pending writebacks. */
    void fence(ThreadId thread = 0);

    /** flush + fence. */
    void persist(Addr addr, std::size_t size, ThreadId thread = 0);

    /** Ticketed epoch section markers (cross-writer overlap rule). */
    void epochBegin(ThreadId thread = 0);
    void epochEnd(ThreadId thread = 0);

    /** @} */

    /** @name Uninstrumented paths (no ticket, no event). */
    /** @{ */

    /**
     * Raw volatile-image read for spin-polling. Once the polled value
     * is seen, re-read it with load<T>() so the observation enters the
     * event stream exactly once.
     */
    template <typename T>
    T
    peek(Addr addr) const
    {
        T value{};
        peekBytes(addr, &value, sizeof(T));
        return value;
    }

    void peekBytes(Addr addr, void *out, std::size_t size) const;

    /** Volatile scratch word in the header (process handshakes). */
    void coordStore(std::size_t index, std::uint64_t value);
    std::uint64_t coordLoad(std::size_t index) const;
    /** Spin until coordLoad(index) == expect. */
    void coordWait(std::size_t index, std::uint64_t expect) const;

    /** @} */

    /** @name Persistence-domain inspection. */
    /** @{ */

    /** Any byte of the range stored but not yet flushed (any writer). */
    bool hasDirty(const AddrRange &range) const;

    /** Any covering line with a queued, unfenced writeback. */
    bool hasPendingFlush(const AddrRange &range) const;

    /** Range fully durable with respect to *every* writer's history. */
    bool isDurable(const AddrRange &range) const;

    /**
     * The post-crash image if every writer failed now: exactly the
     * bytes whose writebacks some writer's fence completed. Consistent
     * with all writers' fence histories by construction.
     */
    std::vector<std::uint8_t> crashImage() const;

    /** Current global fence-clock value (tickets drawn so far). */
    SeqNum clockNow() const;

    /** @} */

  private:
    struct Header;

    Header *header() const;
    std::uint8_t *volatileImage() const;
    std::uint8_t *pendingImage() const;
    std::uint8_t *durableImage() const;
    SharedLineState *lineTable() const;
    std::size_t lineCount() const { return dataSize_ / cacheLineSize; }

    void lock();
    void unlock();
    /** Draw the next global-clock ticket (call with the lock held). */
    SeqNum ticket();
    void checkBounds(Addr addr, std::size_t size, const char *what) const;

    PmRuntime &runtime_;
    std::string path_;
    std::string error_;
    std::uint32_t writerId_ = 0;
    std::size_t dataSize_ = 0;
    std::size_t mapBytes_ = 0;
    std::uint8_t *base_ = nullptr;
    int fd_ = -1;
};

} // namespace pmdb

#endif // PMDB_PMEM_SHARED_DEVICE_HH
