/**
 * @file
 * Simulated persistent-memory device with an x86 persistence-domain
 * model.
 *
 * The paper evaluates on Intel Optane DCPMM (App Direct). This module
 * substitutes a software model that implements the same persistence
 * semantics the debugger reasons about:
 *
 *  - a store makes cache lines *dirty* in the volatile image;
 *  - a CLF (CLWB/CLFLUSH/CLFLUSHOPT) *initiates* writeback: the line's
 *    bytes at flush time are queued as pending;
 *  - an SFENCE *completes* pending writebacks: queued line images
 *    become part of the durable (persisted) image.
 *
 * CrashSimulator materializes the memory image a real crash would leave
 * behind, which drives cross-failure-semantic bug checking (Section 7.3)
 * and the crash-recovery example.
 */

#ifndef PMDB_PMEM_DEVICE_HH
#define PMDB_PMEM_DEVICE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "trace/sink.hh"

namespace pmdb
{

/** A snapshot of one cache line queued for writeback. */
struct PendingLine
{
    std::array<std::uint8_t, cacheLineSize> data;
};

/**
 * Byte-addressable simulated PM device.
 *
 * Maintains two images: the volatile image (what the running program
 * reads and writes, i.e. memory + caches) and the persisted image (what
 * has provably reached the persistence domain). As a TraceSink it
 * consumes Flush and Fence events to move line snapshots from the
 * pending writeback queue into the persisted image.
 */
class PmemDevice : public TraceSink
{
  public:
    /** Create a device of @p size bytes, zero-initialized. */
    explicit PmemDevice(std::size_t size);

    std::size_t size() const { return volatileImage_.size(); }

    /** @name Program-visible data path. */
    /** @{ */

    /** Write @p size bytes at @p addr (marks covered lines dirty). */
    void write(Addr addr, const void *data, std::size_t size);

    /** Read @p size bytes at @p addr from the volatile image. */
    void read(Addr addr, void *out, std::size_t size) const;

    /** Direct pointer into the volatile image (device retains ownership). */
    std::uint8_t *rawVolatile(Addr addr);
    const std::uint8_t *rawVolatile(Addr addr) const;

    /** @} */

    /** @name Persistence-domain inspection. */
    /** @{ */

    /** Read from the persisted (durable) image. */
    void readPersisted(Addr addr, void *out, std::size_t size) const;

    /** True if any byte of the range is dirty and not yet flushed. */
    bool hasDirty(const AddrRange &range) const;

    /** True if any line overlapping the range has a pending writeback. */
    bool hasPendingFlush(const AddrRange &range) const;

    /**
     * True if the range's volatile content has fully reached the
     * persisted image (no dirty bytes, no pending flushes).
     */
    bool isDurable(const AddrRange &range) const;

    std::size_t dirtyLineCount() const { return dirtyLines_.size(); }
    std::size_t pendingLineCount() const { return pendingLines_.size(); }

    /** @} */

    /** TraceSink: consumes Flush / Fence; ignores other events. */
    void handle(const Event &event) override;

    /**
     * The device is the hardware persistence domain: programs write its
     * volatile image directly (PmemPool::writeBytes) and the
     * dirty/pending tracking must snapshot that image as each
     * flush/fence executes. Deferred (batched) processing would let
     * later writes bleed into earlier writeback snapshots.
     */
    bool requiresSynchronousDelivery() const override { return true; }

    /** Reset all state to a zeroed, clean device. */
    void reset();

  private:
    friend class CrashSimulator;

    void checkBounds(Addr addr, std::size_t size, const char *what) const;
    void markDirty(const AddrRange &range);
    void flushRange(const AddrRange &range);
    void drainPending();

    std::vector<std::uint8_t> volatileImage_;
    std::vector<std::uint8_t> persistedImage_;
    /** Lines with volatile content newer than any queued writeback. */
    std::unordered_map<std::uint64_t, bool> dirtyLines_;
    /** Writebacks initiated by a CLF but not yet fenced. */
    std::unordered_map<std::uint64_t, PendingLine> pendingLines_;
};

/** What happens to flushed-but-unfenced lines at a simulated crash. */
enum class CrashPolicy
{
    /** No pending writeback survives: only fenced data is durable. */
    DropPending,
    /** Every pending writeback happens to land before the crash. */
    CommitPending,
    /** Each pending line independently survives with probability 1/2. */
    RandomPending,
};

/**
 * Materializes post-crash memory images from a PmemDevice. Dirty,
 * never-flushed lines never survive; pending lines survive according
 * to the chosen policy.
 */
class CrashSimulator
{
  public:
    explicit CrashSimulator(const PmemDevice &device) : device_(device) {}

    /**
     * Produce the byte image a recovery program would observe after a
     * crash at this instant.
     */
    std::vector<std::uint8_t> crashImage(CrashPolicy policy,
                                         std::uint64_t seed = 1) const;

  private:
    const PmemDevice &device_;
};

} // namespace pmdb

#endif // PMDB_PMEM_DEVICE_HH
