/**
 * @file
 * Simulated persistent-memory device with an x86 persistence-domain
 * model.
 *
 * The paper evaluates on Intel Optane DCPMM (App Direct). This module
 * substitutes a software model that implements the same persistence
 * semantics the debugger reasons about:
 *
 *  - a store makes cache lines *dirty* in the volatile image;
 *  - a CLF (CLWB/CLFLUSH/CLFLUSHOPT) *initiates* writeback: the line's
 *    bytes at flush time are queued as pending;
 *  - an SFENCE *completes* pending writebacks: queued line images
 *    become part of the durable (persisted) image.
 *
 * CrashSimulator materializes the memory image a real crash would leave
 * behind, which drives cross-failure-semantic bug checking (Section 7.3)
 * and the crash-recovery example.
 */

#ifndef PMDB_PMEM_DEVICE_HH
#define PMDB_PMEM_DEVICE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "trace/sink.hh"

namespace pmdb
{

/** A snapshot of one cache line queued for writeback. */
struct PendingLine
{
    std::array<std::uint8_t, cacheLineSize> data;
    /** Sequence number of the CLF that (last) queued this snapshot. */
    SeqNum flushSeq = 0;
};

/**
 * Observer of persistence-domain transitions.
 *
 * The crash-state exploration engine (src/crashsim) installs one of
 * these to capture crash points incrementally: it is told about each
 * queued writeback (O(1) per CLF-touched line) and about each ordering
 * boundary, instead of copying the whole pool image per boundary.
 * Because the device is a synchronous sink, observers see transitions
 * in exact program order under every dispatch mode.
 */
class PersistenceObserver
{
  public:
    virtual ~PersistenceObserver() = default;

    /** A CLF queued (or refreshed) line @p line's writeback snapshot. */
    virtual void onLineQueued(std::uint64_t line,
                              const PendingLine &snapshot) = 0;

    /**
     * An ordering boundary (Fence / EpochEnd / JoinStrand) is about to
     * drain the pending-writeback queue. @p epoch_depth is the epoch
     * nesting depth the crash point lies in (for EpochEnd, after the
     * section closed).
     */
    virtual void onBoundary(const Event &event, int epoch_depth) = 0;

    /** The observed device is being destroyed; drop any reference. */
    virtual void onDeviceDestroyed() {}
};

/**
 * Byte-addressable simulated PM device.
 *
 * Maintains two images: the volatile image (what the running program
 * reads and writes, i.e. memory + caches) and the persisted image (what
 * has provably reached the persistence domain). As a TraceSink it
 * consumes Flush and Fence events to move line snapshots from the
 * pending writeback queue into the persisted image.
 */
class PmemDevice : public TraceSink
{
  public:
    /** Create a device of @p size bytes, zero-initialized. */
    explicit PmemDevice(std::size_t size);

    /**
     * Create a device whose volatile and durable images both start as
     * @p image — reopening a pool from a crash image, the way a real
     * PM file is mapped back after a failure. The device starts clean
     * (no dirty lines, no pending writebacks, epoch depth 0).
     */
    explicit PmemDevice(std::vector<std::uint8_t> image);

    ~PmemDevice() override;

    std::size_t size() const { return volatileImage_.size(); }

    /** @name Program-visible data path. */
    /** @{ */

    /** Write @p size bytes at @p addr (marks covered lines dirty). */
    void write(Addr addr, const void *data, std::size_t size);

    /** Read @p size bytes at @p addr from the volatile image. */
    void read(Addr addr, void *out, std::size_t size) const;

    /** Direct pointer into the volatile image (device retains ownership). */
    std::uint8_t *rawVolatile(Addr addr);
    const std::uint8_t *rawVolatile(Addr addr) const;

    /** @} */

    /** @name Persistence-domain inspection. */
    /** @{ */

    /** Read from the persisted (durable) image. */
    void readPersisted(Addr addr, void *out, std::size_t size) const;

    /** True if any byte of the range is dirty and not yet flushed. */
    bool hasDirty(const AddrRange &range) const;

    /** True if any line overlapping the range has a pending writeback. */
    bool hasPendingFlush(const AddrRange &range) const;

    /**
     * True if the range's volatile content has fully reached the
     * persisted image (no dirty bytes, no pending flushes).
     */
    bool isDurable(const AddrRange &range) const;

    std::size_t dirtyLineCount() const { return dirtyLines_.size(); }
    std::size_t pendingLineCount() const { return pendingLines_.size(); }

    /** The full durable image (what a DropPending crash would leave). */
    const std::vector<std::uint8_t> &persistedBytes() const
    {
        return persistedImage_;
    }

    /** Writebacks initiated but not yet fenced, keyed by line index. */
    const std::unordered_map<std::uint64_t, PendingLine> &
    pendingLines() const
    {
        return pendingLines_;
    }

    /** Epoch (TX_BEGIN/TX_END) nesting depth seen by the device. */
    int epochDepth() const { return epochDepth_; }

    /**
     * Attach (or detach, with nullptr) a persistence observer.
     * Observation never alters device-visible state, so installing one
     * is const; exactly one observer is supported and it must outlive
     * the device or detach first (the device signals its destruction
     * via PersistenceObserver::onDeviceDestroyed).
     */
    void setPersistenceObserver(PersistenceObserver *observer) const
    {
        observer_ = observer;
    }

    /** @} */

    /** TraceSink: consumes Flush / Fence; ignores other events. */
    void handle(const Event &event) override;

    /**
     * The device is the hardware persistence domain: programs write its
     * volatile image directly (PmemPool::writeBytes) and the
     * dirty/pending tracking must snapshot that image as each
     * flush/fence executes. Deferred (batched) processing would let
     * later writes bleed into earlier writeback snapshots.
     */
    bool requiresSynchronousDelivery() const override { return true; }

    /** Reset all state to a zeroed, clean device. */
    void reset();

  private:
    friend class CrashSimulator;

    void checkBounds(Addr addr, std::size_t size, const char *what) const;
    void markDirty(const AddrRange &range);
    void flushRange(const AddrRange &range, SeqNum seq);
    void drainPending();

    std::vector<std::uint8_t> volatileImage_;
    std::vector<std::uint8_t> persistedImage_;
    /** Lines with volatile content newer than any queued writeback. */
    std::unordered_map<std::uint64_t, bool> dirtyLines_;
    /** Writebacks initiated by a CLF but not yet fenced. */
    std::unordered_map<std::uint64_t, PendingLine> pendingLines_;
    int epochDepth_ = 0;
    mutable PersistenceObserver *observer_ = nullptr;
};

/** What happens to flushed-but-unfenced lines at a simulated crash. */
enum class CrashPolicy
{
    /** No pending writeback survives: only fenced data is durable. */
    DropPending,
    /** Every pending writeback happens to land before the crash. */
    CommitPending,
    /** Each pending line independently survives with probability 1/2. */
    RandomPending,
};

/**
 * Materializes post-crash memory images from a PmemDevice. Dirty,
 * never-flushed lines never survive; pending lines survive according
 * to the chosen policy.
 */
class CrashSimulator
{
  public:
    explicit CrashSimulator(const PmemDevice &device) : device_(device) {}

    /**
     * Produce the byte image a recovery program would observe after a
     * crash at this instant.
     */
    std::vector<std::uint8_t> crashImage(CrashPolicy policy,
                                         std::uint64_t seed = 1) const;

    /**
     * Partial-persistence image: exactly the pending lines listed in
     * @p landed_lines (cache-line indices) reach durability; every
     * other pending line is lost. Non-pending entries are ignored —
     * already-durable lines are durable regardless, and dirty,
     * never-flushed lines can never land. This is the leaf operation
     * of crash-state enumeration (x86 lets each flushed-but-unfenced
     * line independently reach the persistence domain).
     */
    std::vector<std::uint8_t>
    partialImage(const std::vector<std::uint64_t> &landed_lines) const;

  private:
    const PmemDevice &device_;
};

} // namespace pmdb

#endif // PMDB_PMEM_DEVICE_HH
