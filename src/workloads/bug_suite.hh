/**
 * @file
 * The 78-case crash-consistency bug suite (Table 6).
 *
 * The paper evaluates detection capability on 78 bugs across ten
 * types: 68 from existing bug evaluation suites (synthetic bugs plus
 * bugs reproduced from PMDK's commit history) and ten extra synthetic
 * cases for the relaxed persistency models. The per-type case counts
 * match Table 6's "Bug cases" row exactly:
 *
 *   no-durability 44, multiple-overwrites 2, no-order 4,
 *   redundant-flush 6, flush-nothing 3, redundant-logging 5,
 *   lack-durability-in-epoch 4, redundant-epoch-fence 4,
 *   lack-ordering-in-strands 2, cross-failure-semantic 4.
 *
 * Every case is a real little PM program (raw pool operations or a
 * workload with a fault injection enabled); detection is measured by
 * actually running each detector on the case's event stream. Each
 * scenario also has a correct variant (buggy = false) used to verify
 * the zero-false-positive property the paper reports.
 */

#ifndef PMDB_WORKLOADS_BUG_SUITE_HH
#define PMDB_WORKLOADS_BUG_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "core/cross_failure.hh"
#include "core/debugger.hh"
#include "detectors/pmtest.hh"
#include "detectors/xfdetector.hh"
#include "trace/runtime.hh"

namespace pmdb
{

class CrashsimSession;

/** Environment a bug-case scenario runs in. */
struct CaseEnv
{
    PmRuntime &runtime;
    /** Null when the case runs without PMTest annotations. */
    PmTestDetector *pmtest = nullptr;
    /** Null when PMDebugger is not attached (single-tool harnesses). */
    PmDebugger *pmdebugger = nullptr;
    /** Null when XFDetector is not attached. */
    XfDetector *xfdetector = nullptr;
    /** Non-null when a crashsim session should capture this case. */
    CrashsimSession *crashsim = nullptr;
    /**
     * Out-of-process sink for externally detected bugs. When
     * PMDebugger runs behind the detection service instead of
     * in-process, manual cross-failure checks report here (the
     * RemoteSink funnels them to the daemon over the control plane).
     */
    CrossFailureChecker::ReportSink externalBugSink;
    /** False runs the correct variant (false-positive check). */
    bool buggy = true;

    /**
     * Register a cross-failure verifier with XFDetector (evaluated at
     * each of its failure points against the device's crash image) and
     * with the crashsim session, when one is attached.
     */
    void armCrossFailure(const PmemDevice &device,
                         CrossFailureChecker::Verifier verify);

    /**
     * Invoke the recovery program by hand at this failure point, as
     * the paper does for PMDebugger (Section 7.3).
     */
    void checkCrossFailure(const PmemDevice &device,
                           const CrossFailureChecker::Verifier &verify);
};

/** One case of the suite. */
struct BugCase
{
    int id = 0;
    std::string name;
    BugType expected = BugType::NoDurability;
    PersistencyModel model = PersistencyModel::Epoch;
    /** Order-spec text for the ordering rules (may be empty). */
    std::string orderSpec;
    /** Whether the PMTest developers annotated this case. */
    bool pmtestAnnotated = true;
    /** Enable pmemcheck/XFDetector overwrite detection for this case. */
    bool enableOverwriteDetection = false;
    std::function<void(CaseEnv &)> scenario;
};

/** The full 78-case suite, in Table 6 type order. */
const std::vector<BugCase> &bugSuite();

/** Cases of one type. */
std::vector<const BugCase *> casesOfType(BugType type);

} // namespace pmdb

#endif // PMDB_WORKLOADS_BUG_SUITE_HH
