/**
 * @file
 * r_tree: transactional persistent radix tree (PMDK example).
 *
 * A 16-ary radix tree over the key's nibbles (most-significant first)
 * with leaf-pushing: an edge slot holds either a child node or a
 * tagged leaf; inserting a colliding leaf expands the path one nibble
 * at a time. Each insert runs in one transaction.
 *
 * Fault-injection points:
 *  - "rtree_skip_log_slot": slot update not logged/flushed
 *    (lack durability in epoch).
 */

#ifndef PMDB_WORKLOADS_RTREE_HH
#define PMDB_WORKLOADS_RTREE_HH

#include <cstdint>
#include <optional>

#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Persistent radix tree. */
class PersistentRTree
{
  public:
    static constexpr int fanout = 16;
    static constexpr int maxDepth = 16; // 64-bit key, 4 bits per level

    struct Leaf
    {
        std::uint64_t key;
        std::uint64_t value;
    };

    struct Node
    {
        /** Tagged slots: bit 0 set = leaf pointer. */
        Addr slots[fanout];
    };

    struct Meta
    {
        Addr root;
        std::uint64_t count;
    };

    PersistentRTree(PmemPool &pool, const FaultSet &faults,
                    PmTestDetector *pmtest = nullptr);

    void insert(std::uint64_t key, std::uint64_t value);

    /** Remove @p key (clears its leaf slot); true if present. */
    bool remove(std::uint64_t key);

    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    std::uint64_t count() const;

  private:
    static bool isLeaf(Addr tagged) { return (tagged & 1) != 0; }
    static Addr untag(Addr tagged) { return tagged & ~Addr(1); }

    static int
    nibbleAt(std::uint64_t key, int depth)
    {
        return static_cast<int>((key >> (60 - 4 * depth)) & 0xf);
    }

    void writeSlot(Transaction &tx, Addr node, int slot, Addr value);

    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    Addr meta_;
};

/** The r_tree workload of Table 4. */
class RTreeWorkload : public Workload
{
  public:
    const char *name() const override { return "r_tree"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_RTREE_HH
