#include "workloads/rtree.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace pmdb
{

PersistentRTree::PersistentRTree(PmemPool &pool, const FaultSet &faults,
                                 PmTestDetector *pmtest)
    : pool_(pool), faults_(faults), pmtest_(pmtest)
{
    meta_ = pool_.root(sizeof(Meta));
    pool_.registerVariable("rtree.meta", meta_, sizeof(Meta));

    Meta meta = pool_.load<Meta>(meta_);
    if (meta.root == 0) {
        Transaction tx(pool_);
        tx.begin();
        const Addr root = tx.alloc(sizeof(Node));
        tx.addRange(meta_, sizeof(Meta));
        meta.root = root;
        meta.count = 0;
        pool_.store(meta_, meta);
        tx.commit();
    }
}

void
PersistentRTree::writeSlot(Transaction &tx, Addr node, int slot,
                           Addr value)
{
    const Addr slot_addr = node + slot * sizeof(Addr);
    if (!faults_.active("rtree_skip_log_slot"))
        tx.addRange(slot_addr, sizeof(Addr));
    pool_.store<Addr>(slot_addr, value);
}

void
PersistentRTree::insert(std::uint64_t key, std::uint64_t value)
{
    if (pmtest_)
        pmtest_->pmTestStart();

    Transaction tx(pool_);
    tx.begin();

    Meta meta = pool_.load<Meta>(meta_);
    Addr node = meta.root;
    int depth = 0;
    Addr leaf_written = 0;

    for (;;) {
        if (depth >= maxDepth)
            panic("rtree: key nibbles exhausted (duplicate key?)");
        const int nib = nibbleAt(key, depth);
        const Addr slot =
            pool_.load<Addr>(node + nib * sizeof(Addr));

        if (slot == 0) {
            const Addr leaf = tx.alloc(sizeof(Leaf));
            pool_.store(leaf, Leaf{key, value});
            writeSlot(tx, node, nib, leaf | 1);
            leaf_written = leaf;
            break;
        }

        if (!isLeaf(slot)) {
            node = slot;
            ++depth;
            continue;
        }

        const Addr other_addr = untag(slot);
        Leaf other = pool_.load<Leaf>(other_addr);
        if (other.key == key) {
            // Update in place.
            tx.addRange(other_addr, sizeof(Leaf));
            other.value = value;
            pool_.store(other_addr, other);
            tx.commit();
            if (pmtest_)
                pmtest_->pmTestEnd();
            return;
        }

        // Collision: push the existing leaf down one level and retry.
        const Addr fresh = tx.alloc(sizeof(Node));
        const int other_nib = nibbleAt(other.key, depth + 1);
        writeSlot(tx, fresh, other_nib, slot);
        writeSlot(tx, node, nib, fresh);
        node = fresh;
        ++depth;
    }

    tx.addRange(meta_, sizeof(Meta));
    meta = pool_.load<Meta>(meta_);
    ++meta.count;
    pool_.store(meta_, meta);

    tx.commit();
    if (pmtest_) {
        if (leaf_written)
            pmtest_->isPersist(leaf_written, sizeof(Leaf));
        pmtest_->pmTestEnd();
    }
}

bool
PersistentRTree::remove(std::uint64_t key)
{
    Meta meta = pool_.load<Meta>(meta_);
    Addr node = meta.root;
    for (int depth = 0; depth < maxDepth && node; ++depth) {
        const Addr slot_addr =
            node + nibbleAt(key, depth) * sizeof(Addr);
        const Addr slot = pool_.load<Addr>(slot_addr);
        if (slot == 0)
            return false;
        if (isLeaf(slot)) {
            const Addr leaf_addr = untag(slot);
            if (pool_.load<Leaf>(leaf_addr).key != key)
                return false;
            Transaction tx(pool_);
            tx.begin();
            tx.addRange(slot_addr, sizeof(Addr));
            pool_.store<Addr>(slot_addr, 0);
            tx.addRange(meta_, sizeof(Meta));
            --meta.count;
            pool_.store(meta_, meta);
            tx.commit();
            pool_.freeObj(leaf_addr);
            return true;
        }
        node = slot;
    }
    return false;
}

std::optional<std::uint64_t>
PersistentRTree::lookup(std::uint64_t key) const
{
    Addr node = pool_.load<Meta>(meta_).root;
    for (int depth = 0; depth < maxDepth && node; ++depth) {
        const Addr slot =
            pool_.load<Addr>(node + nibbleAt(key, depth) * sizeof(Addr));
        if (slot == 0)
            return std::nullopt;
        if (isLeaf(slot)) {
            const Leaf leaf = pool_.load<Leaf>(untag(slot));
            if (leaf.key == key)
                return leaf.value;
            return std::nullopt;
        }
        node = slot;
    }
    return std::nullopt;
}

std::uint64_t
PersistentRTree::count() const
{
    return pool_.load<Meta>(meta_).count;
}

void
RTreeWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(24 << 20,
                                           options.operations * 1024);
    PmemPool pool(runtime, pool_bytes, "r_tree.pool",
                  options.trackPersistence);
    PersistentRTree tree(pool, options.faults, options.pmtest);

    Rng rng(options.seed);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        tree.insert(rng.next(), i);
    }

    runtime.programEnd();
}

} // namespace pmdb
