#include "workloads/bug_suite.hh"

#include <cstring>

#include "common/logging.hh"
#include "crashsim/capture.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/hashmap_atomic.hh"
#include "workloads/memcached.hh"
#include "workloads/synth_strand.hh"
#include "workloads/workload.hh"

namespace pmdb
{

std::string
CaseParams::label() const
{
    std::string out;
    auto append = [&](const std::string &part) {
        if (!out.empty())
            out += ',';
        out += part;
    };
    if (seed)
        append("seed=" + std::to_string(seed));
    if (threads)
        append("threads=" + std::to_string(threads));
    if (ycsbMix)
        append(std::string("mix=") + ycsbMix);
    if (operations)
        append("ops=" + std::to_string(operations));
    return out.empty() ? "default" : out;
}

double
ycsbMixSetRatio(char mix)
{
    // The YCSB core mixes, collapsed to the single update-fraction
    // knob the key-value workloads expose: A 50/50 update, B 95/5,
    // C read-only, D read-latest with 5% inserts, E scan-heavy with 5%
    // inserts, F read-modify-write (an RMW touches the store path like
    // an update).
    switch (mix) {
      case 'a': return 0.5;
      case 'b': return 0.05;
      case 'c': return 0.0;
      case 'd': return 0.05;
      case 'e': return 0.05;
      case 'f': return 0.5;
      default:
        panic(std::string("ycsbMixSetRatio: unknown mix '") + mix +
              "'");
    }
}

void
CaseEnv::armCrossFailure(const PmemDevice &device,
                         CrossFailureChecker::Verifier verify)
{
    // Crash-state exploration captures from the moment the verifier is
    // armed: initialization persists before this point are part of the
    // durable baseline, matching XFDetector's verifier semantics.
    if (crashsim)
        crashsim->adopt(device, verify);
    if (!xfdetector)
        return;
    const PmemDevice *dev = &device;
    xfdetector->setCrossFailureVerifier(
        [dev, verify = std::move(verify)]() -> std::string {
            CrashSimulator sim(*dev);
            const std::vector<std::uint8_t> image =
                sim.crashImage(CrashPolicy::DropPending);
            return verify(image);
        });
}

void
CaseEnv::checkCrossFailure(const PmemDevice &device,
                           const CrossFailureChecker::Verifier &verify)
{
    // The crash image must reflect every event issued so far; under
    // batched/async dispatch the device sink may still have events in
    // flight, so force delivery before simulating the crash.
    runtime.drain();
    if (pmdebugger) {
        CrossFailureChecker::check(*pmdebugger, device, verify,
                                   {.seq = runtime.eventCount()});
    } else if (externalBugSink) {
        CrossFailureChecker::check(externalBugSink, device, verify,
                                   {.seq = runtime.eventCount()});
    }
}

namespace
{

using Scenario = std::function<void(CaseEnv &)>;

constexpr std::size_t casePoolBytes = 1 << 20;

/** Fill a buffer with a recognizable pattern. */
void
fillPattern(std::uint8_t *buf, std::size_t size, std::uint64_t seed)
{
    for (std::size_t i = 0; i < size; ++i)
        buf[i] = static_cast<std::uint8_t>((seed + i * 131) & 0xff);
}

/** Scenario: run a workload with one fault enabled. */
Scenario
wlScenario(std::string workload, std::string fault, std::size_t ops,
           std::size_t cache_capacity = 0, double set_ratio = -1.0)
{
    return [workload = std::move(workload), fault = std::move(fault),
            ops, cache_capacity, set_ratio](CaseEnv &env) {
        auto wl = makeWorkload(workload);
        if (!wl)
            panic("bug suite: unknown workload " + workload);
        WorkloadOptions options;
        options.operations = ops;
        options.seed = 7;
        options.pmtest = env.pmtest;
        options.cacheCapacity = cache_capacity;
        if (set_ratio >= 0.0)
            options.setRatio = set_ratio;
        if (env.params) {
            // Corpus-variation overrides: the advisory engine records
            // the same program under many parameters and expects the
            // fault — hence the bug's program site — to survive all of
            // them.
            if (env.params->seed)
                options.seed = env.params->seed;
            if (env.params->threads)
                options.threads = env.params->threads;
            if (env.params->operations)
                options.operations = env.params->operations;
            if (env.params->ycsbMix)
                options.setRatio = ycsbMixSetRatio(env.params->ycsbMix);
        }
        if (env.buggy)
            options.faults.enable(fault);
        wl->run(env.runtime, options);
    };
}

/** Scenario: @p locs stores of @p size bytes; buggy variant skips CLFs. */
Scenario
missingFlush(int locs, std::uint32_t size)
{
    return [locs, size](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr base = pool.alloc(static_cast<std::size_t>(locs) * 256);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        std::uint8_t buf[256];
        for (int i = 0; i < locs; ++i) {
            fillPattern(buf, size, i);
            pool.writeBytes(base + i * 256, buf, size);
            if (!env.buggy)
                pool.flush(base + i * 256, size);
        }
        pool.fence();
        if (env.pmtest) {
            for (int i = 0; i < locs; ++i)
                env.pmtest->isPersist(base + i * 256, size);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: stores and CLFs but no fence in the buggy variant. */
Scenario
missingFence(int locs, std::uint32_t size)
{
    return [locs, size](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr base = pool.alloc(static_cast<std::size_t>(locs) * 256);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        std::uint8_t buf[256];
        for (int i = 0; i < locs; ++i) {
            fillPattern(buf, size, i);
            pool.writeBytes(base + i * 256, buf, size);
            pool.flush(base + i * 256, size);
        }
        if (!env.buggy)
            pool.fence();
        if (env.pmtest) {
            for (int i = 0; i < locs; ++i)
                env.pmtest->isPersist(base + i * 256, size);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: 128-byte object, buggy variant flushes only one half. */
Scenario
partialFlush(bool low_half)
{
    return [low_half](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(128);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        std::uint8_t buf[128];
        fillPattern(buf, sizeof(buf), 3);
        pool.writeBytes(obj, buf, sizeof(buf));
        if (env.buggy)
            pool.flush(low_half ? obj : obj + 64, 64);
        else
            pool.flush(obj, 128);
        pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 128);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: the CLF targets a different (durable) line. */
Scenario
flushWrongLine()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(256);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 0x11);
        pool.flush(env.buggy ? obj + 128 : obj, 8);
        pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: 192-byte store, buggy variant misses the middle line. */
Scenario
missingMiddleLine()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(192);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        std::uint8_t buf[192];
        fillPattern(buf, sizeof(buf), 9);
        pool.writeBytes(obj, buf, sizeof(buf));
        pool.flush(obj, 64);
        if (!env.buggy)
            pool.flush(obj + 64, 64);
        pool.flush(obj + 128, 64);
        pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 192);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: re-dirty after the CLF; buggy variant never re-flushes. */
Scenario
storeAfterFlush()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 1);
        pool.flush(obj, 8);
        pool.fence();
        pool.store<std::uint64_t>(obj, 2);
        if (!env.buggy) {
            pool.flush(obj, 8);
        }
        pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: store after the transaction commits, never persisted. */
Scenario
storeAfterCommit()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        {
            Transaction tx(pool);
            tx.begin();
            tx.addRange(obj, 8);
            pool.store<std::uint64_t>(obj, 1);
            tx.commit();
        }
        pool.store<std::uint64_t>(obj + 8, 2);
        if (!env.buggy)
            pool.persist(obj + 8, 8);
        if (env.pmtest) {
            env.pmtest->isPersist(obj + 8, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: a strand section whose store is never flushed. */
Scenario
strandStoreNoFlush()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        env.runtime.strandBegin(0);
        pool.store<std::uint64_t>(obj, 5);
        if (!env.buggy) {
            pool.flush(obj, 8);
            pool.fence();
        }
        env.runtime.strandEnd(0);
        env.runtime.joinStrand();
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: fence issued before the CLF (flush never fenced). */
Scenario
fenceBeforeFlush()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 7);
        if (env.buggy) {
            pool.fence();
            pool.flush(obj, 8);
        } else {
            pool.flush(obj, 8);
            pool.fence();
        }
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: loop persists all but the last element. */
Scenario
loopMissingLast(int locs)
{
    return [locs](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr base = pool.alloc(static_cast<std::size_t>(locs) * 64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        const int flushed = env.buggy ? locs - 1 : locs;
        for (int i = 0; i < locs; ++i) {
            pool.store<std::uint64_t>(base + i * 64, i);
            if (i < flushed)
                pool.flush(base + i * 64, 8);
        }
        pool.fence();
        if (env.pmtest) {
            for (int i = 0; i < locs; ++i)
                env.pmtest->isPersist(base + i * 64, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: two interleaved objects; buggy variant flushes only one. */
Scenario
interleavedMissing()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr a = pool.alloc(64);
        const Addr b = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(a, 1);
        pool.store<std::uint64_t>(b, 2);
        pool.flush(a, 8);
        if (!env.buggy)
            pool.flush(b, 8);
        pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(a, 8);
            env.pmtest->isPersist(b, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: 1 KiB object; buggy variant misses one interior line. */
Scenario
bigObjectMissingLine()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(1024);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        std::uint8_t buf[1024];
        fillPattern(buf, sizeof(buf), 21);
        pool.writeBytes(obj, buf, sizeof(buf));
        for (int line = 0; line < 16; ++line) {
            if (env.buggy && line == 5)
                continue;
            pool.flush(obj + line * 64, 64);
        }
        pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 1024);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: CLFLUSHOPT without the required SFENCE. */
Scenario
clflushoptMissingFence()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 77);
        pool.flush(obj, 8, FlushKind::Clflushopt);
        if (!env.buggy)
            pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: multiline object where one piece escapes every CLF. */
Scenario
splitEscape()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(256);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        std::uint8_t buf[160];
        fillPattern(buf, sizeof(buf), 33);
        pool.writeBytes(obj + 32, buf, sizeof(buf)); // spans 3 lines
        pool.flush(obj, 64);
        if (!env.buggy) {
            pool.flush(obj + 64, 64);
            pool.flush(obj + 128, 64);
        } else {
            pool.flush(obj + 128, 64);
        }
        pool.fence();
        if (env.pmtest) {
            env.pmtest->isPersist(obj + 32, 160);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: overwrite whose final store is never flushed. */
Scenario
overwriteThenMissingFlush()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 1);
        pool.persist(obj, 8);
        pool.store<std::uint64_t>(obj, 2);
        if (!env.buggy)
            pool.persist(obj, 8);
        if (env.pmtest) {
            env.pmtest->isPersist(obj, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: overwrite before any CLF (strict model). */
Scenario
overwriteBeforeFlush()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 1);
        if (!env.buggy)
            pool.persist(obj, 8);
        pool.store<std::uint64_t>(obj, 2);
        pool.persist(obj, 8);
        if (env.pmtest)
            env.pmtest->pmTestEnd();
    };
}

/** Scenario: overwrite after the CLF but before the fence. */
Scenario
overwriteAfterFlush()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 1);
        pool.flush(obj, 8);
        if (!env.buggy)
            pool.fence();
        pool.store<std::uint64_t>(obj, 2);
        pool.flush(obj, 8);
        pool.fence();
        if (env.pmtest)
            env.pmtest->pmTestEnd();
    };
}

/** Scenario: B becomes durable before A despite the A-before-B spec. */
Scenario
orderBFirst()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr a = pool.alloc(64);
        const Addr b = pool.alloc(64);
        pool.registerVariable("case.A", a, 8);
        pool.registerVariable("case.B", b, 8);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(a, 1);
        pool.store<std::uint64_t>(b, 2);
        if (env.buggy) {
            pool.persist(b, 8);
            pool.persist(a, 8);
        } else {
            pool.persist(a, 8);
            pool.persist(b, 8);
        }
        if (env.pmtest) {
            env.pmtest->isOrderedBefore(a, 8, b, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: A and B ride the same fence (ambiguous persist order). */
Scenario
orderSameFence()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr a = pool.alloc(64);
        const Addr b = pool.alloc(64);
        pool.registerVariable("case.A", a, 8);
        pool.registerVariable("case.B", b, 8);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(a, 1);
        pool.store<std::uint64_t>(b, 2);
        if (env.buggy) {
            pool.flush(a, 8);
            pool.flush(b, 8);
            pool.fence();
        } else {
            pool.persist(a, 8);
            pool.persist(b, 8);
        }
        if (env.pmtest) {
            env.pmtest->isOrderedBefore(a, 8, b, 8);
            env.pmtest->pmTestEnd();
        }
    };
}

/** Scenario: the same line flushed repeatedly before the fence. */
Scenario
doubleFlush(int extra_flushes)
{
    return [extra_flushes](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 1);
        pool.flush(obj, 8);
        if (env.buggy) {
            for (int i = 0; i < extra_flushes; ++i)
                pool.flush(obj, 8);
        }
        pool.fence();
        if (env.pmtest)
            env.pmtest->pmTestEnd();
    };
}

/** Scenario: a fully flushed 128B object has a line re-flushed. */
Scenario
reflushSubrange()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(128);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        std::uint8_t buf[128];
        fillPattern(buf, sizeof(buf), 8);
        pool.writeBytes(obj, buf, sizeof(buf));
        pool.flush(obj, 128);
        if (env.buggy)
            pool.flush(obj, 64);
        pool.fence();
        if (env.pmtest)
            env.pmtest->pmTestEnd();
    };
}

/** Scenario: a CLF aimed at memory no store ever touched. */
Scenario
flushUntouched()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(128);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        pool.store<std::uint64_t>(obj, 1);
        pool.flush(obj, 8);
        if (env.buggy)
            pool.flush(obj + 64, 8); // the second line was never stored
        pool.fence();
        if (env.pmtest)
            env.pmtest->pmTestEnd();
    };
}

/** Scenario: the same object undo-logged twice in one transaction. */
Scenario
txDoubleLog(bool overlap_subrange)
{
    return [overlap_subrange](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        if (env.pmtest)
            env.pmtest->pmTestStart();
        Transaction tx(pool);
        tx.begin();
        tx.addRange(obj, 32);
        if (env.pmtest)
            env.pmtest->txChecker(obj, 32);
        if (env.buggy) {
            // Exact duplicates are deduped by the tx layer (as PMDK
            // does); buggy code re-logs overlapping sub-ranges.
            const Addr again = overlap_subrange ? obj + 8 : obj;
            const std::size_t size = overlap_subrange ? 8 : 24;
            tx.addRange(again, size);
            if (env.pmtest)
                env.pmtest->txChecker(again, size);
        }
        pool.store<std::uint64_t>(obj, 3);
        tx.commit();
        if (env.pmtest)
            env.pmtest->pmTestEnd();
    };
}

/** Scenario: an epoch store that no CLF covers by epoch end. */
Scenario
epochUnloggedStore()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        Transaction tx(pool);
        tx.begin();
        if (!env.buggy)
            tx.addRange(obj, 8);
        pool.store<std::uint64_t>(obj, 4);
        tx.commit();
    };
}

/** Scenario: an explicit persist (extra fence) inside the epoch. */
Scenario
epochExtraFence()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr obj = pool.alloc(64);
        Transaction tx(pool);
        tx.begin();
        tx.addRange(obj, 8);
        pool.store<std::uint64_t>(obj, 4);
        if (env.buggy)
            pool.persist(obj, 8); // Figure 7a's redundant fence
        tx.commit();
    };
}

/** Scenario: Figure 7b — strand 1 persists B before strand 0's A. */
Scenario
strandCrossPersist()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr shared = pool.alloc(128);
        const Addr a = shared;
        const Addr b = shared + 64;
        pool.registerVariable("case.A", a, 8);
        pool.registerVariable("case.B", b, 8);

        if (env.buggy) {
            // Strand 0 writes A and B but has only flushed A (no
            // barrier yet) when strand 1 jumps in and persists B.
            env.runtime.strandBegin(0);
            pool.store<std::uint64_t>(a, 1);
            pool.store<std::uint64_t>(b, 2);
            pool.flush(a, 8);
            env.runtime.strandEnd(0);

            env.runtime.strandBegin(1);
            pool.flush(b, 8); // persists B while A is not yet durable
            pool.fence();
            env.runtime.strandEnd(1);

            env.runtime.strandBegin(0);
            pool.fence();
            pool.flush(b, 8);
            pool.fence();
            env.runtime.strandEnd(0);
        } else {
            env.runtime.strandBegin(0);
            pool.store<std::uint64_t>(a, 1);
            pool.store<std::uint64_t>(b, 2);
            pool.flush(a, 8);
            pool.fence();
            pool.flush(b, 8);
            pool.fence();
            env.runtime.strandEnd(0);
        }
        env.runtime.joinStrand();
    };
}

/** Scenario: committed key published while its value never persisted. */
Scenario
xfKvPublish()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr value = pool.alloc(64);
        const Addr key = pool.alloc(64);
        const std::uint64_t payload = 0x1234abcdULL;

        auto verify =
            [value, key, payload](
                const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t k = 0, v = 0;
            std::memcpy(&k, image.data() + key, 8);
            std::memcpy(&v, image.data() + value, 8);
            if (k == 1 && v != payload)
                return "recovery reads a committed key whose value "
                       "never persisted";
            return "";
        };
        env.armCrossFailure(pool.device(), verify);

        pool.store<std::uint64_t>(value, payload);
        if (!env.buggy)
            pool.persist(value, 8);
        pool.store<std::uint64_t>(key, 1);
        pool.persist(key, 8);
        pool.fence(); // shutdown fence: XFDetector's failure point

        env.checkCrossFailure(pool.device(), verify);
    };
}

/** Scenario: transaction with an unlogged field breaking an invariant. */
Scenario
xfTxUnloggedField()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        // Fields a and b live on different cache lines (a CLF of one
        // cannot incidentally persist the other); invariant: a == b.
        const Addr obj = pool.alloc(128);
        const Addr field_b = obj + 64;

        pool.store<std::uint64_t>(obj, 1);
        pool.store<std::uint64_t>(field_b, 1);
        pool.persist(obj, 128);

        auto verify =
            [obj, field_b](
                const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t a = 0, b = 0;
            std::memcpy(&a, image.data() + obj, 8);
            std::memcpy(&b, image.data() + field_b, 8);
            if (a != b)
                return "recovery reads a torn object (a != b)";
            return "";
        };
        env.armCrossFailure(pool.device(), verify);

        Transaction tx(pool);
        tx.begin();
        if (env.buggy) {
            tx.addRange(obj, 8); // only field a is logged/flushed
        } else {
            tx.addRange(obj, 8);
            tx.addRange(field_b, 8);
        }
        pool.store<std::uint64_t>(obj, 2);
        pool.store<std::uint64_t>(field_b, 2);
        tx.commit();
        pool.fence(); // shutdown fence

        env.checkCrossFailure(pool.device(), verify);
    };
}

/** Scenario: paired counters persisted independently. */
Scenario
xfCounterPair()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr c1 = pool.alloc(64);
        const Addr c2 = pool.alloc(64);
        pool.store<std::uint64_t>(c1, 1);
        pool.store<std::uint64_t>(c2, 1);
        pool.persist(c1, 8);
        pool.persist(c2, 8);

        auto verify =
            [c1, c2](const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t v1 = 0, v2 = 0;
            std::memcpy(&v1, image.data() + c1, 8);
            std::memcpy(&v2, image.data() + c2, 8);
            if (v1 != v2)
                return "recovery reads unbalanced counters";
            return "";
        };
        env.armCrossFailure(pool.device(), verify);

        if (env.buggy) {
            pool.store<std::uint64_t>(c1, 2);
            pool.persist(c1, 8);
            pool.fence(); // failure window: c1 == 2, c2 == 1
            env.checkCrossFailure(pool.device(), verify);
            pool.store<std::uint64_t>(c2, 2);
            pool.persist(c2, 8);
        } else {
            Transaction tx(pool);
            tx.begin();
            tx.addRange(c1, 8);
            tx.addRange(c2, 8);
            pool.store<std::uint64_t>(c1, 2);
            pool.store<std::uint64_t>(c2, 2);
            tx.commit();
            env.checkCrossFailure(pool.device(), verify);
        }
    };
}

/** Scenario: list head published before the node persists. */
Scenario
xfListAppend()
{
    return [](CaseEnv &env) {
        constexpr std::uint64_t magic = 0x600dda7aULL;
        PmemPool pool(env.runtime, casePoolBytes, "case.pool");
        const Addr head = pool.alloc(64);
        const Addr node = pool.alloc(64);
        // head == 0 and durable already (alloc persists the zeroes)

        auto verify =
            [head, magic](
                const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t h = 0;
            std::memcpy(&h, image.data() + head, 8);
            if (h == 0)
                return "";
            std::uint64_t m = 0;
            std::memcpy(&m, image.data() + h, 8);
            if (m != magic)
                return "recovery follows a head pointer into an "
                       "unpersisted node";
            return "";
        };
        env.armCrossFailure(pool.device(), verify);

        if (env.buggy) {
            pool.store<std::uint64_t>(head, node);
            pool.persist(head, 8);
            pool.fence(); // failure window: head set, node garbage
            env.checkCrossFailure(pool.device(), verify);
            pool.store<std::uint64_t>(node, magic);
            pool.persist(node, 8);
        } else {
            pool.store<std::uint64_t>(node, magic);
            pool.persist(node, 8);
            pool.store<std::uint64_t>(head, node);
            pool.persist(head, 8);
            env.checkCrossFailure(pool.device(), verify);
        }
    };
}

std::vector<BugCase>
buildSuite()
{
    std::vector<BugCase> suite;
    int next_id = 1;

    auto add = [&](std::string name, BugType type, PersistencyModel model,
                   Scenario scenario) -> BugCase & {
        BugCase bug_case;
        bug_case.id = next_id++;
        bug_case.name = std::move(name);
        bug_case.expected = type;
        bug_case.model = model;
        // Every event of a case carries at least this scenario-level
        // program site; workload-internal SiteScopes nest inside it and
        // win. Detectors ignore the name on non-RegisterPmem events, so
        // reports and fingerprints are unchanged.
        bug_case.scenario = [site_name = "bug_suite.cc:" + bug_case.name,
                             inner =
                                 std::move(scenario)](CaseEnv &env) {
            SiteScope site(env.runtime, site_name);
            inner(env);
        };
        suite.push_back(std::move(bug_case));
        return suite.back();
    };

    const auto epoch = PersistencyModel::Epoch;
    const auto strict = PersistencyModel::Strict;
    const auto strand = PersistencyModel::Strand;
    const auto durability = BugType::NoDurability;

    // ---- No durability guarantee (44 cases) -------------------------
    add("missing_flush_1x8", durability, epoch, missingFlush(1, 8));
    add("missing_flush_2x8", durability, epoch, missingFlush(2, 8));
    add("missing_flush_4x8", durability, epoch, missingFlush(4, 8));
    add("missing_flush_8x8", durability, epoch, missingFlush(8, 8));
    add("missing_flush_1x64", durability, epoch, missingFlush(1, 64));
    add("missing_flush_2x64", durability, epoch, missingFlush(2, 64));
    add("missing_flush_4x128", durability, epoch, missingFlush(4, 128));
    add("missing_flush_8x128", durability, epoch, missingFlush(8, 128));
    add("missing_fence_1x8", durability, epoch, missingFence(1, 8));
    add("missing_fence_2x8", durability, epoch, missingFence(2, 8));
    add("missing_fence_1x128", durability, epoch, missingFence(1, 128));
    add("missing_fence_4x64", durability, epoch, missingFence(4, 64));
    add("partial_flush_low", durability, epoch, partialFlush(true));
    add("partial_flush_high", durability, epoch, partialFlush(false));
    add("flush_wrong_line", durability, epoch, flushWrongLine());
    add("missing_middle_line", durability, epoch, missingMiddleLine());
    add("store_after_flush", durability, epoch, storeAfterFlush());
    add("store_after_commit", durability, epoch, storeAfterCommit());
    add("strand_store_no_flush", durability, strand, strandStoreNoFlush());
    add("fence_before_flush", durability, epoch, fenceBeforeFlush());
    add("loop_missing_last", durability, epoch, loopMissingLast(8));
    add("interleaved_missing", durability, epoch, interleavedMissing());
    add("big_object_missing_line", durability, epoch,
        bigObjectMissingLine());
    add("clflushopt_missing_fence", durability, epoch,
        clflushoptMissingFence());
    // Enough inserts to cross a statistics batch boundary, where the
    // workload's PMTest annotation asserts the counters' durability.
    add("hashmap_tx_stats_never_flushed", durability, epoch,
        wlScenario("hashmap_tx", "hmtx_skip_stats_flush", 1200));
    add("hashmap_atomic_entry_not_flushed", durability, epoch,
        wlScenario("hashmap_atomic", "hmatomic_skip_entry_flush", 100));
    add("synth_strand_missing_barrier", durability, strand,
        wlScenario("synth_strand", "strand_missing_barrier", 128));
    for (int mc_bug : {1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 18, 19}) {
        // A write-heavy mix exercises both set paths; bug 8 needs a
        // tiny capacity so evictions actually happen.
        const std::size_t capacity = mc_bug == 8 ? 64 : 0;
        BugCase &bug_case = add(
            "memcached_bug_" + std::to_string(mc_bug), durability, strict,
            wlScenario("memcached", "mc_bug_" + std::to_string(mc_bug),
                       400, capacity, 0.5));
        bug_case.orderSpec = MemcachedWorkload().orderSpecText();
    }
    add("missing_flush_3x32", durability, epoch, missingFlush(3, 32));
    add("missing_fence_3x32", durability, epoch, missingFence(3, 32));
    add("split_escape", durability, epoch, splitEscape());
    add("overwrite_then_missing_flush", durability, epoch,
        overwriteThenMissingFlush());

    // ---- Multiple overwrites (2 cases) ------------------------------
    {
        BugCase &c1 = add("overwrite_before_flush",
                          BugType::MultipleOverwrite, strict,
                          overwriteBeforeFlush());
        c1.enableOverwriteDetection = true;
        BugCase &c2 = add("overwrite_after_flush",
                          BugType::MultipleOverwrite, strict,
                          overwriteAfterFlush());
        c2.enableOverwriteDetection = true;
    }

    // ---- No order guarantee (4 cases) -------------------------------
    {
        BugCase &c1 = add("order_b_before_a", BugType::NoOrderGuarantee,
                          strict, orderBFirst());
        c1.orderSpec = "persist_before case.A case.B\n";
        BugCase &c2 = add("order_same_fence", BugType::NoOrderGuarantee,
                          strict, orderSameFence());
        c2.orderSpec = "persist_before case.A case.B\n";
        BugCase &c3 = add(
            "hashmap_atomic_bucket_first", BugType::NoOrderGuarantee,
            epoch,
            wlScenario("hashmap_atomic", "hmatomic_bucket_before_entry",
                       100));
        c3.orderSpec = HashmapAtomicWorkload().orderSpecText();
        BugCase &c4 = add("memcached_publish_first",
                          BugType::NoOrderGuarantee, strict,
                          wlScenario("memcached", "mc_bug_13", 400, 0, 0.5));
        c4.orderSpec = MemcachedWorkload().orderSpecText();
    }

    // ---- Redundant flushes (6 cases) ---------------------------------
    add("double_flush", BugType::RedundantFlush, epoch, doubleFlush(1));
    add("triple_flush", BugType::RedundantFlush, epoch, doubleFlush(2));
    add("reflush_subrange", BugType::RedundantFlush, epoch,
        reflushSubrange());
    add("hashmap_atomic_double_flush", BugType::RedundantFlush, epoch,
        wlScenario("hashmap_atomic", "hmatomic_double_flush", 100));
    add("memcached_item_reflushed", BugType::RedundantFlush, strict,
        wlScenario("memcached", "mc_bug_9", 400, 0, 0.5));
    add("memcached_value_reflushed", BugType::RedundantFlush, strict,
        wlScenario("memcached", "mc_bug_10", 400, 0, 0.5));

    // ---- Flush nothing (3 cases) -------------------------------------
    {
        BugCase &c1 = add("flush_untouched_line", BugType::FlushNothing,
                          epoch, flushUntouched());
        c1.pmtestAnnotated = false;
        BugCase &c2 = add(
            "hashmap_atomic_flush_empty", BugType::FlushNothing, epoch,
            wlScenario("hashmap_atomic", "hmatomic_flush_empty", 100));
        c2.pmtestAnnotated = false;
        BugCase &c3 = add("memcached_flush_scratch",
                          BugType::FlushNothing, strict,
                          wlScenario("memcached", "mc_bug_12", 400, 0, 0.5));
        c3.pmtestAnnotated = false;
    }

    // ---- Redundant logging (5 cases) ----------------------------------
    add("tx_double_log", BugType::RedundantLogging, epoch,
        txDoubleLog(false));
    add("tx_overlap_log", BugType::RedundantLogging, epoch,
        txDoubleLog(true));
    add("btree_double_log", BugType::RedundantLogging, epoch,
        wlScenario("b_tree", "btree_double_log", 100));
    add("hashmap_tx_double_log", BugType::RedundantLogging, epoch,
        wlScenario("hashmap_tx", "hmtx_double_log", 100));
    add("redis_double_log", BugType::RedundantLogging, epoch,
        wlScenario("redis", "redis_double_log", 200));

    // ---- Lack durability in epoch (4 cases) ---------------------------
    for (auto &[name, scenario] :
         std::vector<std::pair<std::string, Scenario>>{
             {"epoch_unlogged_store", epochUnloggedStore()},
             {"btree_unlogged_meta",
              wlScenario("b_tree", "btree_skip_log_meta", 100)},
             {"ctree_unlogged_parent",
              wlScenario("c_tree", "ctree_skip_log_parent", 100)},
             {"redis_unlogged_dict",
              wlScenario("redis", "redis_skip_log_dict", 200)}}) {
        BugCase &bug_case = add(name, BugType::LackDurabilityInEpoch,
                                epoch, scenario);
        bug_case.pmtestAnnotated = false;
    }

    // ---- Redundant epoch fence (4 cases) ------------------------------
    for (auto &[name, scenario] :
         std::vector<std::pair<std::string, Scenario>>{
             {"epoch_extra_fence", epochExtraFence()},
             {"btree_persist_in_tx",
              wlScenario("b_tree", "btree_persist_in_tx", 100)},
             {"pmdk_create_hashmap_fence",
              wlScenario("hashmap_atomic", "pmdk_create_bug", 50)},
             {"redis_persist_in_tx",
              wlScenario("redis", "redis_persist_in_tx", 200)}}) {
        BugCase &bug_case = add(name, BugType::RedundantEpochFence, epoch,
                                scenario);
        bug_case.pmtestAnnotated = false;
    }

    // ---- Lack ordering in strands (2 cases) ---------------------------
    {
        BugCase &c1 = add("strand_cross_persist_raw",
                          BugType::LackOrderingInStrands, strand,
                          strandCrossPersist());
        c1.orderSpec = "persist_before case.A case.B\n";
        c1.pmtestAnnotated = false;
        BugCase &c2 = add(
            "synth_strand_cross_persist", BugType::LackOrderingInStrands,
            strand, wlScenario("synth_strand", "strand_cross_persist", 128));
        c2.orderSpec = SynthStrandWorkload().orderSpecText();
        c2.pmtestAnnotated = false;
    }

    // ---- Cross-failure semantic (4 cases) -----------------------------
    for (auto &[name, scenario] :
         std::vector<std::pair<std::string, Scenario>>{
             {"xf_kv_publish", xfKvPublish()},
             {"xf_tx_unlogged_field", xfTxUnloggedField()},
             {"xf_counter_pair", xfCounterPair()},
             {"xf_list_append", xfListAppend()}}) {
        BugCase &bug_case = add(name, BugType::CrossFailureSemantic,
                                epoch, scenario);
        bug_case.pmtestAnnotated = false;
    }

    // Attach the generated expected-fingerprint table (sorted strings,
    // one row per (case, fingerprint)). Regenerate with
    // `pmdb_tracetool gen-fingerprints` after any change that moves a
    // bug's identity.
    static const std::vector<std::pair<const char *, const char *>>
        expected_rows = {
#include "workloads/bug_suite_fingerprints.inc"
        };
    for (const auto &[case_name, fingerprint] : expected_rows) {
        for (BugCase &bug_case : suite) {
            if (bug_case.name == case_name) {
                bug_case.expectedFingerprints.emplace_back(fingerprint);
                break;
            }
        }
    }

    return suite;
}

} // namespace

const std::vector<BugCase> &
bugSuite()
{
    static const std::vector<BugCase> suite = buildSuite();
    return suite;
}

std::vector<const BugCase *>
casesOfType(BugType type)
{
    std::vector<const BugCase *> cases;
    for (const BugCase &bug_case : bugSuite()) {
        if (bug_case.expected == type)
            cases.push_back(&bug_case);
    }
    return cases;
}

} // namespace pmdb
