#include "workloads/hashmap_tx.hh"

#include <algorithm>

#include "common/rng.hh"

namespace pmdb
{

PersistentHashmapTx::PersistentHashmapTx(PmemPool &pool,
                                         const FaultSet &faults,
                                         PmTestDetector *pmtest,
                                         std::uint64_t n_buckets)
    : pool_(pool), faults_(faults), pmtest_(pmtest), nBuckets_(n_buckets)
{
    meta_ = pool_.root(sizeof(Meta));
    pool_.registerVariable("hashmap_tx.meta", meta_, sizeof(Meta));

    Meta meta = pool_.load<Meta>(meta_);
    if (meta.buckets == 0) {
        // Create the bucket and statistics arrays. alloc() zero-fills
        // and persists them.
        const Addr buckets = pool_.alloc(nBuckets_ * sizeof(Addr));
        const Addr stats = pool_.alloc(nBuckets_ * sizeof(std::uint64_t));
        Transaction tx(pool_);
        tx.begin();
        tx.addRange(meta_, sizeof(Meta));
        meta.buckets = buckets;
        meta.bucketStats = stats;
        meta.nBuckets = nBuckets_;
        meta.count = 0;
        pool_.store(meta_, meta);
        tx.commit();
    } else {
        nBuckets_ = meta.nBuckets;
    }
}

Addr
PersistentHashmapTx::bucketAddr(std::uint64_t index) const
{
    return pool_.load<Meta>(meta_).buckets + index * sizeof(Addr);
}

Addr
PersistentHashmapTx::statAddr(std::uint64_t index) const
{
    return pool_.load<Meta>(meta_).bucketStats +
           index * sizeof(std::uint64_t);
}

void
PersistentHashmapTx::insert(std::uint64_t key, std::uint64_t value)
{
    if (pmtest_)
        pmtest_->pmTestStart();

    const std::uint64_t bucket = mix64(key) % nBuckets_;
    const Addr slot = bucketAddr(bucket);

    {
        Transaction tx(pool_);
        tx.begin();

        // Walk the chain for an existing key.
        Addr cursor = pool_.load<Addr>(slot);
        bool updated = false;
        while (cursor) {
            Entry entry = pool_.load<Entry>(cursor);
            if (entry.key == key) {
                if (tx.addRange(cursor, sizeof(Entry)) && pmtest_)
                    pmtest_->txChecker(cursor, sizeof(Entry));
                if (faults_.active("hmtx_double_log")) {
                    if (tx.addRange(cursor + 8, 8) && pmtest_)
                        pmtest_->txChecker(cursor + 8, 8);
                }
                entry.value = value;
                pool_.store(cursor, entry);
                updated = true;
                break;
            }
            cursor = entry.next;
        }

        if (!updated) {
            const Addr fresh = tx.alloc(sizeof(Entry));
            Entry entry{key, value, pool_.load<Addr>(slot)};
            pool_.store(fresh, entry);
            if (faults_.active("hmtx_double_log")) {
                // Two overlapping undo entries for the fresh object.
                if (tx.addRange(fresh, 16) && pmtest_)
                    pmtest_->txChecker(fresh, 16);
                if (tx.addRange(fresh + 8, 8) && pmtest_)
                    pmtest_->txChecker(fresh + 8, 8);
            }

            if (!faults_.active("hmtx_skip_log_bucket"))
                tx.addRange(slot, sizeof(Addr));
            pool_.store<Addr>(slot, fresh);

            tx.addRange(meta_, sizeof(Meta));
            Meta meta = pool_.load<Meta>(meta_);
            ++meta.count;
            pool_.store(meta_, meta);
        }

        tx.commit();
    }

    // Deferred statistics: the counter store happens now (outside the
    // epoch) but is only flushed in periodic batches.
    const Addr stat = statAddr(bucket);
    const std::uint64_t hits = pool_.load<std::uint64_t>(stat) + 1;
    pool_.store<std::uint64_t>(stat, hits);
    dirtyStats_.push_back(stat);
    ++sinceStatsFlush_;
    const bool batch_due = sinceStatsFlush_ >= statsFlushPeriod;
    if (batch_due)
        flushStats();

    if (pmtest_) {
        pmtest_->isPersist(slot, sizeof(Addr));
        if (batch_due)
            pmtest_->isPersist(stat, sizeof(std::uint64_t));
        pmtest_->pmTestEnd();
    }
}

void
PersistentHashmapTx::flushStats()
{
    sinceStatsFlush_ = 0;
    if (faults_.active("hmtx_skip_stats_flush")) {
        dirtyStats_.clear();
        return;
    }
    // Flush exactly the dirtied counters (at line granularity, each
    // line once) and drain with one fence.
    std::sort(dirtyStats_.begin(), dirtyStats_.end());
    Addr last_line = ~Addr(0);
    bool flushed_any = false;
    for (Addr stat : dirtyStats_) {
        const Addr line = cacheLineBase(stat);
        if (line == last_line)
            continue;
        pool_.flush(line, cacheLineSize);
        last_line = line;
        flushed_any = true;
    }
    if (flushed_any)
        pool_.fence();
    dirtyStats_.clear();
}

bool
PersistentHashmapTx::remove(std::uint64_t key)
{
    const std::uint64_t bucket = mix64(key) % nBuckets_;
    const Addr slot = bucketAddr(bucket);

    Transaction tx(pool_);
    tx.begin();
    Addr freed = 0;
    Addr prev = 0;
    Addr cursor = pool_.load<Addr>(slot);
    while (cursor) {
        const Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key) {
            freed = cursor;
            if (prev) {
                tx.addRange(prev + offsetof(Entry, next), sizeof(Addr));
                pool_.store<Addr>(prev + offsetof(Entry, next),
                                  entry.next);
            } else {
                tx.addRange(slot, sizeof(Addr));
                pool_.store<Addr>(slot, entry.next);
            }
            tx.addRange(meta_, sizeof(Meta));
            Meta meta = pool_.load<Meta>(meta_);
            --meta.count;
            pool_.store(meta_, meta);
            break;
        }
        prev = cursor;
        cursor = entry.next;
    }
    tx.commit();
    // The block returns to the allocator outside the epoch, with its
    // own header persist.
    if (freed)
        pool_.freeObj(freed);
    return freed != 0;
}

std::optional<std::uint64_t>
PersistentHashmapTx::lookup(std::uint64_t key) const
{
    const std::uint64_t bucket = mix64(key) % nBuckets_;
    Addr cursor = pool_.load<Addr>(bucketAddr(bucket));
    while (cursor) {
        const Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key)
            return entry.value;
        cursor = entry.next;
    }
    return std::nullopt;
}

std::uint64_t
PersistentHashmapTx::count() const
{
    return pool_.load<Meta>(meta_).count;
}

void
HashmapTxWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(16 << 20,
                                           options.operations * 256);
    PmemPool pool(runtime, pool_bytes, "hashmap_tx.pool",
                  options.trackPersistence);
    PersistentHashmapTx map(pool, options.faults, options.pmtest);

    Rng rng(options.seed);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        map.insert(rng.next(), i);
    }

    map.flushStats();
    runtime.programEnd();
}

} // namespace pmdb
