#include "workloads/btree.hh"

#include <cstring>

#include "common/rng.hh"
#include "crashsim/capture.hh"

namespace pmdb
{

PersistentBTree::PersistentBTree(PmemPool &pool, const FaultSet &faults,
                                 PmTestDetector *pmtest)
    : pool_(pool), faults_(faults), pmtest_(pmtest)
{
    meta_ = pool_.root(sizeof(Meta));
    pool_.registerVariable("btree.meta", meta_, sizeof(Meta));

    Meta meta = pool_.load<Meta>(meta_);
    if (meta.rootNode == 0) {
        Transaction tx(pool_);
        tx.begin();
        const Addr root = allocNode(tx, true);
        tx.addRange(meta_, sizeof(Meta));
        meta.rootNode = root;
        meta.count = 0;
        pool_.store(meta_, meta);
        tx.commit();
    }
}

Addr
PersistentBTree::allocNode(Transaction &tx, bool leaf)
{
    const Addr addr = tx.alloc(sizeof(Node));
    // tx.alloc zero-fills; set the leaf flag (covered by the commit
    // barrier via the allocation's registered range).
    pool_.store<std::uint32_t>(addr + offsetof(Node, isLeaf),
                               leaf ? 1 : 0);
    return addr;
}

void
PersistentBTree::splitChild(Transaction &tx, Addr parent_addr, int index)
{
    Node parent = pool_.load<Node>(parent_addr);
    const Addr child_addr = parent.children[index];
    Node child = pool_.load<Node>(child_addr);

    const Addr sibling_addr = allocNode(tx, child.isLeaf != 0);
    Node sibling = pool_.load<Node>(sibling_addr);

    const int mid = maxKeys / 2;
    sibling.nKeys = maxKeys - mid - 1;
    for (int i = 0; i < static_cast<int>(sibling.nKeys); ++i) {
        sibling.keys[i] = child.keys[mid + 1 + i];
        sibling.values[i] = child.values[mid + 1 + i];
    }
    if (!child.isLeaf) {
        for (int i = 0; i <= static_cast<int>(sibling.nKeys); ++i)
            sibling.children[i] = child.children[mid + 1 + i];
    }

    tx.addRange(child_addr, sizeof(Node));
    tx.addRange(parent_addr, sizeof(Node));

    const std::uint64_t up_key = child.keys[mid];
    const std::uint64_t up_val = child.values[mid];
    child.nKeys = mid;

    for (int i = parent.nKeys; i > index; --i) {
        parent.keys[i] = parent.keys[i - 1];
        parent.values[i] = parent.values[i - 1];
        parent.children[i + 1] = parent.children[i];
    }
    parent.keys[index] = up_key;
    parent.values[index] = up_val;
    parent.children[index + 1] = sibling_addr;
    ++parent.nKeys;

    pool_.store(sibling_addr, sibling);
    pool_.store(child_addr, child);
    pool_.store(parent_addr, parent);
}

void
PersistentBTree::insertNonFull(Transaction &tx, Addr node_addr,
                               std::uint64_t key, std::uint64_t value)
{
    Node node = pool_.load<Node>(node_addr);

    // Update in place if the key exists at this node.
    for (int i = 0; i < static_cast<int>(node.nKeys); ++i) {
        if (node.keys[i] == key) {
            tx.addRange(node_addr, sizeof(Node));
            node.values[i] = value;
            pool_.store(node_addr, node);
            return;
        }
    }

    if (node.isLeaf) {
        if (tx.addRange(node_addr, sizeof(Node)) && pmtest_)
            pmtest_->txChecker(node_addr, sizeof(Node));
        if (faults_.active("btree_double_log")) {
            // Re-log part of the already-logged node: a second,
            // overlapping undo entry (PMDK dedups only exact ranges).
            if (tx.addRange(node_addr + 8, 16) && pmtest_)
                pmtest_->txChecker(node_addr + 8, 16);
        }
        int i = node.nKeys - 1;
        while (i >= 0 && node.keys[i] > key) {
            node.keys[i + 1] = node.keys[i];
            node.values[i + 1] = node.values[i];
            --i;
        }
        node.keys[i + 1] = key;
        node.values[i + 1] = value;
        ++node.nKeys;
        pool_.store(node_addr, node);

        Meta meta = pool_.load<Meta>(meta_);
        ++meta.count;
        if (!faults_.active("btree_skip_log_meta"))
            tx.addRange(meta_, sizeof(Meta));
        pool_.store(meta_, meta);
        return;
    }

    int i = node.nKeys - 1;
    while (i >= 0 && node.keys[i] > key)
        --i;
    ++i;
    {
        Node child = pool_.load<Node>(node.children[i]);
        if (static_cast<int>(child.nKeys) == maxKeys) {
            splitChild(tx, node_addr, i);
            node = pool_.load<Node>(node_addr);
            if (node.keys[i] < key)
                ++i;
            else if (node.keys[i] == key) {
                tx.addRange(node_addr, sizeof(Node));
                node.values[i] = value;
                pool_.store(node_addr, node);
                return;
            }
        }
    }
    insertNonFull(tx, node.children[i], key, value);
}

void
PersistentBTree::insert(std::uint64_t key, std::uint64_t value)
{
    if (pmtest_)
        pmtest_->pmTestStart();

    Transaction tx(pool_);
    tx.begin();

    Meta meta = pool_.load<Meta>(meta_);
    Node root = pool_.load<Node>(meta.rootNode);
    if (static_cast<int>(root.nKeys) == maxKeys) {
        // Grow the tree: new root with the old root as only child.
        const Addr new_root = allocNode(tx, false);
        Node fresh = pool_.load<Node>(new_root);
        fresh.children[0] = meta.rootNode;
        pool_.store(new_root, fresh);

        tx.addRange(meta_, sizeof(Meta));
        meta.rootNode = new_root;
        pool_.store(meta_, meta);
        splitChild(tx, new_root, 0);
    }
    insertNonFull(tx, pool_.load<Meta>(meta_).rootNode, key, value);

    if (faults_.active("btree_persist_in_tx")) {
        // The data_store/create_hashmap bug pattern (Figure 9b): a
        // pmemobj-persist inside the epoch inserts a redundant fence.
        pool_.persist(meta_, sizeof(Meta));
    }

    tx.commit();

    if (pmtest_) {
        pmtest_->isPersist(meta_, sizeof(Meta));
        pmtest_->pmTestEnd();
    }
}

std::optional<std::uint64_t>
PersistentBTree::lookup(std::uint64_t key) const
{
    Meta meta = pool_.load<Meta>(meta_);
    Addr node_addr = meta.rootNode;
    while (node_addr != 0) {
        Node node = pool_.load<Node>(node_addr);
        int i = 0;
        while (i < static_cast<int>(node.nKeys) && node.keys[i] < key)
            ++i;
        if (i < static_cast<int>(node.nKeys) && node.keys[i] == key)
            return node.values[i];
        if (node.isLeaf)
            return std::nullopt;
        node_addr = node.children[i];
    }
    return std::nullopt;
}

std::uint64_t
PersistentBTree::count() const
{
    return pool_.load<Meta>(meta_).count;
}

namespace
{

/** Walk state for the image-level structural check. */
struct BTreeImageWalk
{
    const std::vector<std::uint8_t> &image;
    std::uint64_t reachable = 0;
    std::uint64_t visited = 0;
    std::string error;

    void node(Addr addr, int depth)
    {
        using Node = PersistentBTree::Node;
        if (!error.empty())
            return;
        if (addr == 0 || addr % 8 != 0 ||
            addr + sizeof(Node) > image.size()) {
            error = "b_tree recovery: node pointer out of bounds";
            return;
        }
        if (depth > 64 || ++visited > (1u << 20)) {
            error = "b_tree recovery: tree walk diverges (cycle?)";
            return;
        }
        Node n;
        std::memcpy(&n, image.data() + addr, sizeof(n));
        if (n.nKeys > PersistentBTree::maxKeys) {
            error = "b_tree recovery: node key count corrupt";
            return;
        }
        for (std::uint32_t i = 1; i < n.nKeys; ++i) {
            if (n.keys[i - 1] >= n.keys[i]) {
                error = "b_tree recovery: node keys out of order";
                return;
            }
        }
        reachable += n.nKeys;
        if (!n.isLeaf) {
            for (std::uint32_t i = 0; i <= n.nKeys; ++i)
                node(n.children[i], depth + 1);
        }
    }
};

std::string
verifyBTreeImage(Addr meta_addr, const std::vector<std::uint8_t> &image)
{
    using Meta = PersistentBTree::Meta;
    if (meta_addr + sizeof(Meta) > image.size())
        return "b_tree recovery: metadata out of bounds";
    Meta meta;
    std::memcpy(&meta, image.data() + meta_addr, sizeof(meta));
    if (meta.rootNode == 0)
        return "b_tree recovery: root pointer lost";
    BTreeImageWalk walk{image, 0, 0, {}};
    walk.node(meta.rootNode, 0);
    if (!walk.error.empty())
        return walk.error;
    if (walk.reachable != meta.count) {
        return "b_tree recovery: reachable keys (" +
               std::to_string(walk.reachable) +
               ") disagree with durable count (" +
               std::to_string(meta.count) + ")";
    }
    return "";
}

} // namespace

CrossFailureChecker::Verifier
btreeRecoveryVerifier(Addr meta_addr, TxRecovery::TxLogRegion log_region)
{
    return [meta_addr,
            log_region](const std::vector<std::uint8_t> &image)
               -> std::string {
        std::uint64_t log_bytes = 0;
        if (log_region.base + sizeof(log_bytes) <= image.size()) {
            std::memcpy(&log_bytes, image.data() + log_region.base,
                        sizeof(log_bytes));
        }
        if (log_bytes == 0)
            return verifyBTreeImage(meta_addr, image);
        // A crash mid-transaction: run undo-log recovery first, on a
        // private copy (the exploration shares the image across
        // candidates).
        std::vector<std::uint8_t> recovered = image;
        TxRecovery::rollbackImage(log_region.base, log_region.size,
                                  recovered);
        return verifyBTreeImage(meta_addr, recovered);
    };
}

void
BTreeWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(16 << 20,
                                           options.operations * 768);
    PmemPool pool(runtime, pool_bytes, "b_tree.pool",
                  options.trackPersistence);
    PersistentBTree tree(pool, options.faults, options.pmtest);

    if (options.crashsim) {
        options.crashsim->adopt(
            pool.device(),
            btreeRecoveryVerifier(tree.metaAddr(),
                                  TxRecovery::logRegionOf(pool)));
    }

    Rng rng(options.seed);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        tree.insert(rng.next(), i);
    }

    runtime.programEnd();
}

} // namespace pmdb
