#include "workloads/suite_runner.hh"

#include <algorithm>
#include <memory>
#include <set>

#include "common/logging.hh"
#include "detectors/pmdebugger_detector.hh"
#include "detectors/pmemcheck.hh"
#include "detectors/pmtest.hh"
#include "detectors/xfdetector.hh"

namespace pmdb
{

namespace
{

/** Run one (case, detector, variant) combination; returns its bugs. */
std::unique_ptr<Detector>
runVariant(const BugCase &bug_case, const std::string &detector,
           bool buggy)
{
    PmRuntime runtime;
    CaseEnv env{runtime};
    env.buggy = buggy;

    std::unique_ptr<Detector> tool;
    if (detector == "pmdebugger") {
        DebuggerConfig config;
        config.model = bug_case.model;
        if (!bug_case.orderSpec.empty())
            config.orderSpec = OrderSpec::fromText(bug_case.orderSpec);
        auto pd = std::make_unique<PmDebuggerDetector>(std::move(config));
        env.pmdebugger = &pd->debugger();
        tool = std::move(pd);
    } else if (detector == "pmemcheck") {
        PmemcheckConfig config;
        config.detectMultipleOverwrite = bug_case.enableOverwriteDetection;
        tool = std::make_unique<PmemcheckDetector>(config);
    } else if (detector == "pmtest") {
        auto pt = std::make_unique<PmTestDetector>();
        pt->setOverwriteChecks(bug_case.enableOverwriteDetection);
        if (bug_case.pmtestAnnotated)
            env.pmtest = pt.get();
        tool = std::move(pt);
    } else if (detector == "xfdetector") {
        XfDetectorConfig config;
        if (!bug_case.orderSpec.empty())
            config.orderSpec = OrderSpec::fromText(bug_case.orderSpec);
        config.detectMultipleOverwrite = bug_case.enableOverwriteDetection;
        // The suite's programs are tiny: exercise every fence as a
        // failure point so the cross-failure verifier runs in-window.
        config.fenceStride = 1;
        auto xf = std::make_unique<XfDetector>(std::move(config));
        env.xfdetector = xf.get();
        tool = std::move(xf);
    } else {
        fatal("suite runner: unknown detector " + detector);
    }

    runtime.attach(tool.get());
    bug_case.scenario(env);
    runtime.programEnd();
    tool->finalize();
    runtime.detach(tool.get());
    return tool;
}

} // namespace

CaseOutcome
runCase(const BugCase &bug_case, const std::string &detector,
        bool check_false_positive)
{
    CaseOutcome outcome;
    {
        auto tool = runVariant(bug_case, detector, true);
        outcome.detected = tool->bugs().hasAny(bug_case.expected);
    }
    if (check_false_positive) {
        auto tool = runVariant(bug_case, detector, false);
        outcome.falsePositive = tool->bugs().total() > 0;
    }
    return outcome;
}

std::vector<std::string>
caseFingerprints(const BugCase &bug_case)
{
    auto tool = runVariant(bug_case, "pmdebugger", true);
    std::vector<std::string> out;
    for (const BugFingerprint &fp : tool->bugs().fingerprints())
        out.push_back(fp.toString());
    std::sort(out.begin(), out.end());
    return out;
}

SuiteMatrix
runSuite(const std::vector<std::string> &detectors,
         bool check_false_positives)
{
    SuiteMatrix matrix;
    for (const std::string &detector : detectors) {
        for (const BugCase &bug_case : bugSuite()) {
            matrix[detector][bug_case.id] =
                runCase(bug_case, detector, check_false_positives);
        }
    }
    return matrix;
}

std::vector<SuiteScore>
scoreSuite(const SuiteMatrix &matrix)
{
    std::vector<SuiteScore> scores;
    for (const auto &[detector, outcomes] : matrix) {
        SuiteScore score;
        score.detector = detector;
        std::set<BugType> types;
        for (const BugCase &bug_case : bugSuite()) {
            auto it = outcomes.find(bug_case.id);
            if (it == outcomes.end())
                continue;
            if (it->second.detected) {
                ++score.detected;
                types.insert(bug_case.expected);
            } else {
                ++score.missed;
            }
            if (it->second.falsePositive)
                ++score.falsePositives;
        }
        score.typesDetected = static_cast<int>(types.size());
        scores.push_back(std::move(score));
    }
    return scores;
}

} // namespace pmdb
