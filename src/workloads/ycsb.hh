/**
 * @file
 * YCSB core-workload generator (loads A-F) and a driver that runs them
 * against the mini-memcached, reproducing the a_YCSB..f_YCSB columns of
 * the paper's characterization (Figure 2).
 *
 * Mixes follow the YCSB core package:
 *   A: 50% read / 50% update           (update heavy)
 *   B: 95% read /  5% update           (read mostly)
 *   C: 100% read                       (read only)
 *   D: 95% read-latest / 5% insert     (read latest)
 *   E: 95% scan / 5% insert            (short ranges)
 *   F: 50% read / 50% read-modify-write
 * Keys are scrambled-zipfian distributed (theta 0.99).
 */

#ifndef PMDB_WORKLOADS_YCSB_HH
#define PMDB_WORKLOADS_YCSB_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "trace/runtime.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** One generated YCSB operation. */
struct YcsbOp
{
    enum Kind
    {
        Read,
        Update,
        Insert,
        Scan,
        ReadModifyWrite,
    };

    Kind kind;
    std::uint64_t key;
    /** For Scan: number of consecutive keys. */
    int scanLength;
};

/** Generator for one YCSB core load. */
class YcsbGenerator
{
  public:
    /**
     * @param load one of 'a'..'f'
     * @param record_count size of the (logical) key space
     */
    YcsbGenerator(char load, std::uint64_t record_count,
                  std::uint64_t seed = 99);

    YcsbOp next();

    char load() const { return load_; }

  private:
    char load_;
    std::uint64_t records_;
    std::uint64_t insertCursor_;
    ScrambledZipfianGenerator zipf_;
    Rng rng_;
};

/**
 * YCSB load X against memcached — the workloads named "a_YCSB" ..
 * "f_YCSB" in Figure 2. The workload name is "ycsb_<load>".
 */
class YcsbWorkload : public Workload
{
  public:
    explicit YcsbWorkload(char load) : load_(load)
    {
        name_ = std::string("ycsb_") + load_;
    }

    const char *name() const override { return name_.c_str(); }

    PersistencyModel model() const override
    {
        return PersistencyModel::Strict;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;

  private:
    char load_;
    std::string name_;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_YCSB_HH
