#include "workloads/modelcheck_workloads.hh"

#include "common/rng.hh"
#include "crashsim/capture.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "trace/recorder.hh"
#include "workloads/btree.hh"
#include "workloads/hashmap_atomic.hh"
#include "workloads/hashmap_tx.hh"

namespace pmdb
{

namespace
{

/** Continuation key streams must differ from the initial stream. */
constexpr std::uint64_t recoverySeedSalt = 0x7265636f76657279ULL;

/**
 * Per-execution capture scaffold: one runtime, one crash-point
 * session, optional event recording, and the execution's read set.
 */
struct Capture
{
    PmRuntime runtime;
    CrashsimSession session;
    TraceRecorder recorder;
    ReadSet reads;
    bool record;

    explicit Capture(const ModelRunConfig &cfg)
        : session(cfg.sim), record(cfg.recordEvents)
    {
        if (record)
            runtime.attach(&recorder);
        runtime.setReadTracker(&reads);
    }

    /** Close the execution and package everything the engine needs. */
    ModelExecution
    finish(PmemPool &pool, std::string verdict)
    {
        runtime.programEnd();
        runtime.drain();

        ModelExecution exec;
        exec.inconsistency = std::move(verdict);
        exec.log = session.log();
        exec.finalImage = pool.device().persistedBytes();
        exec.reads = std::move(reads);
        if (record) {
            exec.events = recorder.events();
            const NameTable &names = runtime.names();
            for (std::uint32_t i = 0; i < names.size(); ++i)
                exec.names.push_back(names.name(i));
            runtime.detach(&recorder);
        }
        runtime.setReadTracker(nullptr);
        return exec;
    }
};

std::size_t
poolBytesOr(const ModelRunConfig &cfg, std::size_t fallback)
{
    return cfg.poolBytes != 0 ? cfg.poolBytes : fallback;
}

/** Small tables keep recovery walks (and the state space) tractable. */
constexpr std::uint64_t mcBuckets = 16;
constexpr std::size_t mcPoolBytes = std::size_t(1) << 17;

/* --------------------------------------------------------------- */
/* hashmap_atomic                                                  */
/* --------------------------------------------------------------- */

/**
 * One audit cache line after the hashmap meta. Every operation stamps
 * it (store + CLF; the insert's own fences drain it), and recovery
 * never reads it — so crash states that differ only in the stamp are
 * exactly the classes read-set pruning collapses (DESIGN.md §11).
 * It lives on its own line because a line is the read-set grain: were
 * the stamp to share the meta's line, the meta read would pin it.
 */
constexpr std::size_t
hashmapAuditOffset()
{
    return (sizeof(PersistentHashmapAtomic::Meta) +
            cacheLineSize - 1) &
           ~(cacheLineSize - 1);
}

Addr
hashmapAtomicRoot(PmemPool &pool)
{
    return pool.root(hashmapAuditOffset() + cacheLineSize);
}

void
stampAudit(PmemPool &pool, Addr root, std::uint64_t stamp)
{
    pool.store<std::uint64_t>(root + hashmapAuditOffset(), stamp);
    pool.flush(root + hashmapAuditOffset(), 8);
}

/**
 * Instrumented twin of hashmapAtomicRecoveryVerifier: the same chain
 * walk, but through the pool's read path so every byte it depends on
 * lands in the execution's read set. The durable element count is
 * deliberately *not* compared against reachability — the count
 * persists under its own fence after the publish, so a transient
 * mismatch is a legitimate crash state (matching the crashsim
 * verifier's semantics).
 */
std::string
verifyHashmapAtomic(PmemPool &pool)
{
    using Meta = PersistentHashmapAtomic::Meta;
    using Entry = PersistentHashmapAtomic::Entry;
    const Addr meta_addr = pool.root(sizeof(Meta));
    const Meta meta = pool.load<Meta>(meta_addr);
    const std::size_t size = pool.device().size();
    if (meta.buckets == 0 || meta.nBuckets == 0 ||
        meta.buckets + meta.nBuckets * sizeof(Addr) > size)
        return "hashmap_atomic recovery: bucket table corrupt";

    std::uint64_t steps = 0;
    for (std::uint64_t b = 0; b < meta.nBuckets; ++b) {
        Addr cursor = pool.load<Addr>(meta.buckets + b * sizeof(Addr));
        while (cursor != 0) {
            if (cursor % 8 != 0 || cursor + sizeof(Entry) > size)
                return "hashmap_atomic recovery: bucket head dangles "
                       "out of bounds";
            if (++steps > (1u << 20))
                return "hashmap_atomic recovery: chain walk diverges "
                       "(cycle?)";
            const Entry entry = pool.load<Entry>(cursor);
            if (entry.value != hashmapAtomicTaggedValue(entry.key)) {
                return "hashmap_atomic recovery: reachable entry for "
                       "key " +
                       std::to_string(entry.key) +
                       " is torn or never persisted";
            }
            cursor = entry.next;
        }
    }
    return "";
}

} // namespace

ModelExecution
HashmapAtomicModel::runInitial(const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, poolBytesOr(cfg, mcPoolBytes),
                  "hashmap_atomic.pool");
    const Addr root = hashmapAtomicRoot(pool);
    PersistentHashmapAtomic map(pool, cfg.faults, nullptr, mcBuckets);
    // Creation is durable before adoption (as in the crashsim
    // workload); the explored space starts at the first insert.
    cap.session.adopt(pool.device());

    Rng rng(cfg.seed);
    for (std::size_t i = 0; i < cfg.operations; ++i) {
        cap.runtime.appOp();
        stampAudit(pool, root, i + 1);
        const std::uint64_t key = rng.nextBounded(1024);
        map.insert(key, hashmapAtomicTaggedValue(key));
    }
    return cap.finish(pool, "");
}

ModelExecution
HashmapAtomicModel::runRecovery(std::vector<std::uint8_t> image,
                                const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, std::move(image), "hashmap_atomic.pool");
    cap.session.adopt(pool.device());

    const Addr root = hashmapAtomicRoot(pool);
    // The creation transaction committed before capture began, so the
    // log is normally empty — but rolling it back through the
    // instrumented path is what a real reopen does, and it reads the
    // log header into the read set.
    TxRecovery::recoverPool(pool);
    std::string verdict = verifyHashmapAtomic(pool);
    if (verdict.empty() && cfg.recoveryOperations > 0) {
        pool.recoverHeap();
        PersistentHashmapAtomic map(pool, cfg.faults, nullptr, mcBuckets);
        Rng rng(mix64(cfg.seed ^ recoverySeedSalt));
        for (std::size_t i = 0; i < cfg.recoveryOperations; ++i) {
            cap.runtime.appOp();
            stampAudit(pool, root, 1000000 + i);
            const std::uint64_t key = rng.nextBounded(1024);
            map.insert(key, hashmapAtomicTaggedValue(key));
        }
    }
    return cap.finish(pool, std::move(verdict));
}

/* --------------------------------------------------------------- */
/* b_tree                                                          */
/* --------------------------------------------------------------- */

namespace
{

/** Instrumented twin of verifyBTreeImage (btree.cc). */
struct BTreePoolWalk
{
    PmemPool &pool;
    std::uint64_t reachable = 0;
    std::uint64_t visited = 0;
    std::string error;

    void
    node(Addr addr, int depth)
    {
        using Node = PersistentBTree::Node;
        if (!error.empty())
            return;
        if (addr == 0 || addr % 8 != 0 ||
            addr + sizeof(Node) > pool.device().size()) {
            error = "b_tree recovery: node pointer out of bounds";
            return;
        }
        if (depth > 64 || ++visited > (1u << 20)) {
            error = "b_tree recovery: tree walk diverges (cycle?)";
            return;
        }
        const Node n = pool.load<Node>(addr);
        if (n.nKeys > PersistentBTree::maxKeys) {
            error = "b_tree recovery: node key count corrupt";
            return;
        }
        for (std::uint32_t i = 1; i < n.nKeys; ++i) {
            if (n.keys[i - 1] >= n.keys[i]) {
                error = "b_tree recovery: node keys out of order";
                return;
            }
        }
        reachable += n.nKeys;
        if (!n.isLeaf) {
            for (std::uint32_t i = 0; i <= n.nKeys; ++i)
                node(n.children[i], depth + 1);
        }
    }
};

std::string
verifyBTree(PmemPool &pool)
{
    using Meta = PersistentBTree::Meta;
    const Addr meta_addr = pool.root(sizeof(Meta));
    const Meta meta = pool.load<Meta>(meta_addr);
    if (meta.rootNode == 0)
        return "b_tree recovery: root pointer lost";
    BTreePoolWalk walk{pool, 0, 0, {}};
    walk.node(meta.rootNode, 0);
    if (!walk.error.empty())
        return walk.error;
    if (walk.reachable != meta.count) {
        return "b_tree recovery: reachable keys (" +
               std::to_string(walk.reachable) +
               ") disagree with durable count (" +
               std::to_string(meta.count) + ")";
    }
    return "";
}

} // namespace

ModelExecution
BTreeModel::runInitial(const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, poolBytesOr(cfg, std::size_t(1) << 18),
                  "b_tree.pool");
    PersistentBTree tree(pool, cfg.faults);
    cap.session.adopt(pool.device());

    Rng rng(cfg.seed);
    for (std::size_t i = 0; i < cfg.operations; ++i) {
        cap.runtime.appOp();
        tree.insert(rng.next(), i);
    }
    return cap.finish(pool, "");
}

ModelExecution
BTreeModel::runRecovery(std::vector<std::uint8_t> image,
                        const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, std::move(image), "b_tree.pool");
    cap.session.adopt(pool.device());

    pool.root(sizeof(PersistentBTree::Meta));
    TxRecovery::recoverPool(pool);
    std::string verdict = verifyBTree(pool);
    if (verdict.empty() && cfg.recoveryOperations > 0) {
        pool.recoverHeap();
        PersistentBTree tree(pool, cfg.faults);
        Rng rng(mix64(cfg.seed ^ recoverySeedSalt));
        for (std::size_t i = 0; i < cfg.recoveryOperations; ++i) {
            cap.runtime.appOp();
            tree.insert(rng.next(), 1000000 + i);
        }
    }
    return cap.finish(pool, std::move(verdict));
}

/* --------------------------------------------------------------- */
/* hashmap_tx                                                      */
/* --------------------------------------------------------------- */

namespace
{

/**
 * The transactional map keeps count and publish in one transaction,
 * so after undo-log recovery reachability must match the durable
 * count exactly. (With epochAtomic coalescing there are no partial
 * landings inside the transactions, so this workload exercises the
 * dedup and frontier machinery rather than read-set pruning; the
 * pruning showcase is hashmap_atomic's audit line.)
 */
std::string
verifyHashmapTx(PmemPool &pool)
{
    using Meta = PersistentHashmapTx::Meta;
    using Entry = PersistentHashmapTx::Entry;
    const Addr meta_addr = pool.root(sizeof(Meta));
    const Meta meta = pool.load<Meta>(meta_addr);
    const std::size_t size = pool.device().size();
    if (meta.buckets == 0 || meta.nBuckets == 0 ||
        meta.buckets + meta.nBuckets * sizeof(Addr) > size)
        return "hashmap_tx recovery: bucket table corrupt";

    std::uint64_t reachable = 0;
    std::uint64_t steps = 0;
    for (std::uint64_t b = 0; b < meta.nBuckets; ++b) {
        Addr cursor = pool.load<Addr>(meta.buckets + b * sizeof(Addr));
        while (cursor != 0) {
            if (cursor % 8 != 0 || cursor + sizeof(Entry) > size)
                return "hashmap_tx recovery: bucket chain dangles out "
                       "of bounds";
            if (++steps > (1u << 20))
                return "hashmap_tx recovery: chain walk diverges "
                       "(cycle?)";
            const Entry entry = pool.load<Entry>(cursor);
            ++reachable;
            cursor = entry.next;
        }
    }
    if (reachable != meta.count) {
        return "hashmap_tx recovery: reachable entries (" +
               std::to_string(reachable) +
               ") disagree with durable count (" +
               std::to_string(meta.count) + ")";
    }
    return "";
}

} // namespace

ModelExecution
HashmapTxModel::runInitial(const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, poolBytesOr(cfg, mcPoolBytes),
                  "hashmap_tx.pool");
    PersistentHashmapTx map(pool, cfg.faults, nullptr, mcBuckets);
    cap.session.adopt(pool.device());

    Rng rng(cfg.seed);
    for (std::size_t i = 0; i < cfg.operations; ++i) {
        cap.runtime.appOp();
        map.insert(rng.nextBounded(1024), i);
    }
    return cap.finish(pool, "");
}

ModelExecution
HashmapTxModel::runRecovery(std::vector<std::uint8_t> image,
                            const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, std::move(image), "hashmap_tx.pool");
    cap.session.adopt(pool.device());

    pool.root(sizeof(PersistentHashmapTx::Meta));
    TxRecovery::recoverPool(pool);
    std::string verdict = verifyHashmapTx(pool);
    if (verdict.empty() && cfg.recoveryOperations > 0) {
        pool.recoverHeap();
        PersistentHashmapTx map(pool, cfg.faults, nullptr, mcBuckets);
        Rng rng(mix64(cfg.seed ^ recoverySeedSalt));
        for (std::size_t i = 0; i < cfg.recoveryOperations; ++i) {
            cap.runtime.appOp();
            map.insert(rng.nextBounded(1024), 1000000 + i);
        }
    }
    return cap.finish(pool, std::move(verdict));
}

/* --------------------------------------------------------------- */
/* mc_undo_flush                                                   */
/* --------------------------------------------------------------- */

namespace
{

/**
 * mc_undo_flush root object (3 cache lines of a 192-byte root):
 *   +0    u64 a        (line 0)
 *   +64   u64 b        (line 1)
 *   +128  u64 backup   (line 2)
 *   +136  u64 valid    (line 2 — lands atomically with backup)
 */
constexpr Addr mcA = 0;
constexpr Addr mcB = 64;
constexpr Addr mcBackup = 128;
constexpr Addr mcValid = 136;
constexpr std::size_t mcRootSize = 192;

Addr
mcUndoRoot(PmemPool &pool)
{
    return pool.root(mcRootSize);
}

/**
 * The (correct) pair update: arm the one-slot undo backup, write both
 * fields under one fence, disarm. a == b is the durable invariant
 * whenever valid == 0.
 */
void
mcUndoPairOp(PmemPool &pool, Addr root, std::uint64_t value)
{
    const std::uint64_t a = pool.load<std::uint64_t>(root + mcA);
    pool.store<std::uint64_t>(root + mcBackup, a);
    pool.store<std::uint64_t>(root + mcValid, 1);
    pool.persist(root + mcBackup, 16);

    pool.store<std::uint64_t>(root + mcA, value);
    pool.flush(root + mcA, 8);
    pool.store<std::uint64_t>(root + mcB, value);
    pool.flush(root + mcB, 8);
    pool.fence(); // both lines pend here: {a}, {b} partial landings

    pool.store<std::uint64_t>(root + mcValid, 0);
    pool.persist(root + mcValid, 8);
}

} // namespace

ModelExecution
McUndoFlushModel::runInitial(const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, poolBytesOr(cfg, mcPoolBytes),
                  "mc_undo_flush.pool");
    const Addr root = mcUndoRoot(pool);
    pool.registerVariable("mc_undo_flush.pair", root + mcA, 128);
    pool.registerVariable("mc_undo_flush.backup", root + mcBackup, 16);
    cap.session.adopt(pool.device());

    Rng rng(cfg.seed);
    for (std::size_t i = 0; i < cfg.operations; ++i) {
        cap.runtime.appOp();
        mcUndoPairOp(pool, root, rng.next() | 1);
    }
    return cap.finish(pool, "");
}

ModelExecution
McUndoFlushModel::runRecovery(std::vector<std::uint8_t> image,
                              const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, std::move(image), "mc_undo_flush.pool");
    cap.session.adopt(pool.device());
    const Addr root = mcUndoRoot(pool);

    const std::uint64_t a = pool.load<std::uint64_t>(root + mcA);
    const std::uint64_t b = pool.load<std::uint64_t>(root + mcB);
    const std::uint64_t valid = pool.load<std::uint64_t>(root + mcValid);

    std::string verdict;
    if (valid == 0) {
        if (a != b)
            verdict = "mc_undo_flush recovery: torn pair with the "
                      "undo backup disarmed";
    } else {
        const std::uint64_t backup =
            pool.load<std::uint64_t>(root + mcBackup);
        if (buggy_) {
            // THE SEEDED BUG: `a` is restored with a plain store and
            // never flushed, yet the backup is durably disarmed. A
            // second crash after the valid-clear fence — before any
            // later operation happens to flush a's line — strands the
            // torn pair with no undo left to fix it.
            pool.store<std::uint64_t>(root + mcA, backup);
            pool.store<std::uint64_t>(root + mcB, backup);
            pool.persist(root + mcB, 8);
            pool.store<std::uint64_t>(root + mcValid, 0);
            pool.persist(root + mcValid, 8);
        } else {
            pool.store<std::uint64_t>(root + mcA, backup);
            pool.store<std::uint64_t>(root + mcB, backup);
            pool.flush(root + mcA, 8);
            pool.flush(root + mcB, 8);
            pool.fence();
            pool.store<std::uint64_t>(root + mcValid, 0);
            pool.persist(root + mcValid, 8);
        }
    }

    if (verdict.empty()) {
        Rng rng(mix64(cfg.seed ^ recoverySeedSalt));
        for (std::size_t i = 0; i < cfg.recoveryOperations; ++i) {
            cap.runtime.appOp();
            mcUndoPairOp(pool, root, rng.next() | 1);
        }
    }
    return cap.finish(pool, std::move(verdict));
}

/* --------------------------------------------------------------- */
/* mc_dirty_flag                                                   */
/* --------------------------------------------------------------- */

namespace
{

/**
 * mc_dirty_flag root object:
 *   +0    u64 c1      (line 0)
 *   +64   u64 c2      (line 1)
 *   +128  u64 dirty   (line 2)
 */
constexpr Addr mcC1 = 0;
constexpr Addr mcC2 = 64;
constexpr Addr mcDirty = 128;

/** Correct twin-counter update: c1 == c2 whenever dirty == 0. */
void
mcDirtyOp(PmemPool &pool, Addr root, std::uint64_t value)
{
    pool.store<std::uint64_t>(root + mcDirty, 1);
    pool.persist(root + mcDirty, 8);
    pool.store<std::uint64_t>(root + mcC1, value);
    pool.persist(root + mcC1, 8);
    pool.store<std::uint64_t>(root + mcC2, value);
    pool.persist(root + mcC2, 8);
    pool.store<std::uint64_t>(root + mcDirty, 0);
    pool.persist(root + mcDirty, 8);
}

} // namespace

ModelExecution
McDirtyFlagModel::runInitial(const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, poolBytesOr(cfg, mcPoolBytes),
                  "mc_dirty_flag.pool");
    const Addr root = pool.root(mcRootSize);
    pool.registerVariable("mc_dirty_flag.counters", root + mcC1, 128);
    pool.registerVariable("mc_dirty_flag.dirty", root + mcDirty, 8);
    cap.session.adopt(pool.device());

    Rng rng(cfg.seed);
    for (std::size_t i = 0; i < cfg.operations; ++i) {
        cap.runtime.appOp();
        mcDirtyOp(pool, root, rng.next() | 1);
    }
    return cap.finish(pool, "");
}

ModelExecution
McDirtyFlagModel::runRecovery(std::vector<std::uint8_t> image,
                              const ModelRunConfig &cfg)
{
    Capture cap(cfg);
    PmemPool pool(cap.runtime, std::move(image), "mc_dirty_flag.pool");
    cap.session.adopt(pool.device());
    const Addr root = pool.root(mcRootSize);

    const std::uint64_t c1 = pool.load<std::uint64_t>(root + mcC1);
    const std::uint64_t c2 = pool.load<std::uint64_t>(root + mcC2);
    const std::uint64_t dirty = pool.load<std::uint64_t>(root + mcDirty);

    std::string verdict;
    if (dirty == 0) {
        if (c1 != c2)
            verdict = "mc_dirty_flag recovery: counters disagree "
                      "under a clear dirty flag";
    } else if (buggy_) {
        // THE SEEDED BUG: the dirty flag is durably cleared *before*
        // the repair persists — a crash between the two fences leaves
        // disagreeing counters that the next recovery must trust.
        pool.store<std::uint64_t>(root + mcDirty, 0);
        pool.persist(root + mcDirty, 8);
        pool.store<std::uint64_t>(root + mcC2, c1);
        pool.persist(root + mcC2, 8);
    } else {
        pool.store<std::uint64_t>(root + mcC2, c1);
        pool.persist(root + mcC2, 8);
        pool.store<std::uint64_t>(root + mcDirty, 0);
        pool.persist(root + mcDirty, 8);
    }

    if (verdict.empty()) {
        Rng rng(mix64(cfg.seed ^ recoverySeedSalt));
        for (std::size_t i = 0; i < cfg.recoveryOperations; ++i) {
            cap.runtime.appOp();
            mcDirtyOp(pool, root, rng.next() | 1);
        }
    }
    return cap.finish(pool, std::move(verdict));
}

/* --------------------------------------------------------------- */
/* registry                                                        */
/* --------------------------------------------------------------- */

std::vector<std::string>
modelWorkloadNames()
{
    return {"b_tree", "hashmap_atomic", "hashmap_tx", "mc_undo_flush",
            "mc_dirty_flag"};
}

std::unique_ptr<ModelWorkload>
makeModelWorkload(const std::string &name, bool buggy)
{
    if (name == "b_tree")
        return std::make_unique<BTreeModel>();
    if (name == "hashmap_atomic")
        return std::make_unique<HashmapAtomicModel>();
    if (name == "hashmap_tx")
        return std::make_unique<HashmapTxModel>();
    if (name == "mc_undo_flush")
        return std::make_unique<McUndoFlushModel>(buggy);
    if (name == "mc_dirty_flag")
        return std::make_unique<McDirtyFlagModel>(buggy);
    return nullptr;
}

const std::vector<ModelCheckCase> &
modelcheckOnlyCases()
{
    static const std::vector<ModelCheckCase> cases = {
        {"mc_undo_flush",
         "recovery restores a field from the undo backup without a CLF "
         "but durably disarms the backup; only crash -> buggy recovery "
         "-> crash strands the torn pair",
         2},
        {"mc_dirty_flag",
         "recovery durably clears the dirty flag before persisting the "
         "counter repair; the bad ordering is only observable by "
         "crashing recovery between its two fences",
         2},
    };
    return cases;
}

} // namespace pmdb
