/**
 * @file
 * ModelWorkload implementations: the workloads the crash-state model
 * checker (src/modelcheck/) can drive through crash-recover cycles.
 *
 * Three evaluation workloads wrap the existing persistent structures
 * with *real recovery re-entry*: a candidate crash image is reopened
 * as a pool (PmemPool image constructor), undo-log recovery runs
 * through the instrumented path (TxRecovery::recoverPool), the
 * structure is verified by walking it through pool reads (so the
 * execution's read set is complete for pruning), the volatile heap is
 * rebuilt (recoverHeap), and continuation operations run. Every step
 * emits the full store/CLF/fence stream, so recovery and continuation
 * are executions the checker can crash *again*.
 *
 * Two mc_* workloads carry the seeded multi-crash bugs of
 * modelcheckOnlyCases(): their normal operation is crash-consistent
 * (depth-1 exploration finds nothing), but their *recovery code*
 * violates the persistence discipline in a way only a second crash —
 * placed at one of recovery's own ordering boundaries — can expose.
 *
 *  - mc_undo_flush: a pair update protected by a one-slot undo backup
 *    (backup + valid flag persisted, then both fields flushed under
 *    one fence, then valid cleared). The buggy recovery restores field
 *    `a` from the backup with a plain store — no CLF — before
 *    persisting `b` and clearing `valid`. Crash after the durable
 *    valid-clear but before anything ever flushes `a`'s line leaves a
 *    torn pair with the backup already disarmed.
 *
 *  - mc_dirty_flag: two counters kept equal under a dirty flag
 *    (dirty=1 persisted, c1 then c2 persisted, dirty=0 persisted).
 *    The buggy recovery clears the dirty flag durably *before*
 *    repairing c2 — the classic flag-before-repair ordering bug; a
 *    crash between the two leaves disagreeing counters that the next
 *    recovery must accept as "clean".
 */

#ifndef PMDB_WORKLOADS_MODELCHECK_WORKLOADS_HH
#define PMDB_WORKLOADS_MODELCHECK_WORKLOADS_HH

#include "modelcheck/model.hh"

namespace pmdb
{

/** hashmap_atomic under model checking (tag-verified chains). */
class HashmapAtomicModel : public ModelWorkload
{
  public:
    const char *name() const override { return "hashmap_atomic"; }
    ModelExecution runInitial(const ModelRunConfig &cfg) override;
    ModelExecution runRecovery(std::vector<std::uint8_t> image,
                               const ModelRunConfig &cfg) override;
};

/** b_tree under model checking (undo-log recovery + structural walk). */
class BTreeModel : public ModelWorkload
{
  public:
    const char *name() const override { return "b_tree"; }
    ModelExecution runInitial(const ModelRunConfig &cfg) override;
    ModelExecution runRecovery(std::vector<std::uint8_t> image,
                               const ModelRunConfig &cfg) override;
};

/** hashmap_tx under model checking (count must match reachability). */
class HashmapTxModel : public ModelWorkload
{
  public:
    const char *name() const override { return "hashmap_tx"; }
    ModelExecution runInitial(const ModelRunConfig &cfg) override;
    ModelExecution runRecovery(std::vector<std::uint8_t> image,
                               const ModelRunConfig &cfg) override;
};

/** Seeded recovery bug: unflushed undo restore (see file header). */
class McUndoFlushModel : public ModelWorkload
{
  public:
    explicit McUndoFlushModel(bool buggy) : buggy_(buggy) {}
    const char *name() const override { return "mc_undo_flush"; }
    ModelExecution runInitial(const ModelRunConfig &cfg) override;
    ModelExecution runRecovery(std::vector<std::uint8_t> image,
                               const ModelRunConfig &cfg) override;

  private:
    bool buggy_;
};

/** Seeded recovery bug: dirty flag cleared before the repair. */
class McDirtyFlagModel : public ModelWorkload
{
  public:
    explicit McDirtyFlagModel(bool buggy) : buggy_(buggy) {}
    const char *name() const override { return "mc_dirty_flag"; }
    ModelExecution runInitial(const ModelRunConfig &cfg) override;
    ModelExecution runRecovery(std::vector<std::uint8_t> image,
                               const ModelRunConfig &cfg) override;

  private:
    bool buggy_;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_MODELCHECK_WORKLOADS_HH
