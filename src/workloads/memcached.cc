#include "workloads/memcached.hh"

#include <cstring>
#include <thread>

#include "common/rng.hh"

namespace pmdb
{

MiniMemcached::MiniMemcached(PmemPool &pool, const FaultSet &faults,
                             PmTestDetector *pmtest, std::size_t capacity)
    : pool_(pool), faults_(faults), pmtest_(pmtest),
      perShardCapacity_(std::max<std::size_t>(8, capacity / shardCount))
{
    for (std::size_t s = 0; s < shardCount; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->stats = pool_.alloc(sizeof(ShardStats));
        shards_.push_back(std::move(shard));
    }
    // The ordering contract (item before publication flag) is watched
    // on shard 0, where the injected order bugs run.
    pool_.registerVariable("memcached.commit_flag",
                           shards_[0]->stats +
                               offsetof(ShardStats, commitFlag),
                           sizeof(std::uint64_t));
}

bool
MiniMemcached::bug(int n) const
{
    return faults_.active("mc_real_bugs") ||
           faults_.active("mc_bug_" + std::to_string(n));
}

MiniMemcached::Shard &
MiniMemcached::shardFor(std::uint64_t key)
{
    return *shards_[mix64(key ^ 0xfeedULL) % shardCount];
}

void
MiniMemcached::persistStat(Addr field_addr, std::uint64_t value,
                           bool flush, ThreadId thread)
{
    pool_.store<std::uint64_t>(field_addr, value, thread);
    if (flush)
        pool_.persist(field_addr, sizeof(std::uint64_t), thread);
}

void
MiniMemcached::set(std::uint64_t key, std::uint64_t payload,
                   ThreadId thread)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> guard(shard.lock);

    const bool annotate = pmtest_ && thread == 0;
    if (annotate)
        pmtest_->pmTestStart();

    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        setExisting(shard, it->second, payload, thread);
    } else {
        if (shard.index.size() >= perShardCapacity_)
            evictOne(shard, thread);
        setNew(shard, key, payload, thread);
    }

    // Touch the LRU (volatile, as in memcached-pmem).
    auto pos = shard.lruPos.find(key);
    if (pos != shard.lruPos.end())
        shard.lru.erase(pos->second);
    shard.lru.push_front(key);
    shard.lruPos[key] = shard.lru.begin();

    if (annotate)
        pmtest_->pmTestEnd();
}

void
MiniMemcached::setNew(Shard &shard, std::uint64_t key,
                      std::uint64_t payload, ThreadId thread)
{
    const Addr item = pool_.alloc(sizeof(Item));
    const bool watched = &shard == shards_[0].get();
    if (watched) {
        pool_.registerVariable("memcached.pending_item", item,
                               sizeof(Item));
    }

    ShardStats stats = pool_.load<ShardStats>(shard.stats);
    const std::uint64_t cas = stats.casId + 1;
    const Addr commit_flag =
        shard.stats + offsetof(ShardStats, commitFlag);

    PmRuntime &runtime = pool_.runtime();
    {
        SiteScope site(runtime, "memcached.cc:setNew.fill_item", thread);
        // Header line.
        pool_.store<std::uint64_t>(item + offsetof(Item, hash),
                                   mix64(key), thread);
    if (!bug(1)) {
        // Figure 9a: ITEM_set_cas modifies the item's CAS id on link;
        // the buggy code performs this store after the item has been
        // persisted and never flushes it.
        pool_.store<std::uint64_t>(item + offsetof(Item, cas), cas,
                                   thread);
    }
    pool_.store<std::uint32_t>(item + offsetof(Item, flags), 0xbeef,
                               thread);
    pool_.store<std::uint32_t>(item + offsetof(Item, valLen), valueBytes,
                               thread);
    if (!bug(17)) {
        pool_.store<std::uint64_t>(item + offsetof(Item, key), key,
                                   thread);
    }
    if (!bug(18)) {
        pool_.store<std::uint32_t>(item + offsetof(Item, exptime),
                                   static_cast<std::uint32_t>(payload),
                                   thread);
    }

        // Value line.
        std::uint8_t value[valueBytes];
        for (std::size_t i = 0; i < valueBytes; ++i)
            value[i] =
                static_cast<std::uint8_t>(payload >> (8 * (i % 8)));
        pool_.writeBytes(item + offsetof(Item, value), value, valueBytes,
                         thread);
    }

    // Persist the item. Bug 5 flushes only the header line; bug 4
    // flushes both lines but omits the fence.
    SiteScope persist_site(runtime, "memcached.cc:setNew.persist_item",
                           thread);
    if (bug(5)) {
        pool_.flush(item, cacheLineSize, FlushKind::Clwb, thread);
        pool_.fence(thread);
    } else if (bug(4)) {
        pool_.flush(item, sizeof(Item), FlushKind::Clwb, thread);
    } else if (bug(13)) {
        // Order bug: publish the commit flag before the item persists.
        persistStat(commit_flag, cas, true, thread);
        pool_.persist(item, sizeof(Item), thread);
    } else if (bug(14)) {
        // Order bug: item and commit flag ride the same fence, leaving
        // their persist order ambiguous.
        pool_.flush(item, sizeof(Item), FlushKind::Clwb, thread);
        pool_.store<std::uint64_t>(commit_flag, cas, thread);
        pool_.flush(commit_flag, sizeof(std::uint64_t), FlushKind::Clwb,
                    thread);
        pool_.fence(thread);
    } else if (bug(9)) {
        // Redundant flush: the item's lines flushed twice before the
        // fence.
        pool_.flush(item, sizeof(Item), FlushKind::Clwb, thread);
        pool_.flush(item, sizeof(Item), FlushKind::Clwb, thread);
        pool_.fence(thread);
        persistStat(commit_flag, cas, true, thread);
    } else {
        pool_.persist(item, sizeof(Item), thread);
        persistStat(commit_flag, cas, true, thread);
    }

    if (bug(1)) {
        // The unpersisted ITEM_set_cas store of Figure 9a.
        SiteScope site(runtime, "memcached.cc:setNew.late_header_update",
                       thread);
        pool_.store<std::uint64_t>(item + offsetof(Item, cas), cas,
                                   thread);
    }
    if (bug(17)) {
        SiteScope site(runtime, "memcached.cc:setNew.late_header_update",
                       thread);
        pool_.store<std::uint64_t>(item + offsetof(Item, key), key,
                                   thread);
    }
    if (bug(18)) {
        SiteScope site(runtime, "memcached.cc:setNew.late_header_update",
                       thread);
        pool_.store<std::uint32_t>(item + offsetof(Item, exptime),
                                   static_cast<std::uint32_t>(payload),
                                   thread);
    }
    if (bug(11) && shard.staleItem) {
        // Flush-nothing: a CLF on a long-since durable retired item.
        SiteScope site(runtime, "memcached.cc:setNew.audit_flush",
                       thread);
        pool_.flush(shard.staleItem, cacheLineSize, FlushKind::Clwb,
                    thread);
        pool_.fence(thread);
    }
    if (bug(12)) {
        // Flush-nothing: the untouched scratch line of the stats block.
        SiteScope site(runtime, "memcached.cc:setNew.audit_flush",
                       thread);
        pool_.flush(shard.stats + offsetof(ShardStats, scratch),
                    sizeof(std::uint64_t), FlushKind::Clwb, thread);
        pool_.fence(thread);
    }

    // Shard statistics (strict updates). Bug 4 is a set path that
    // returns without any fence at all: its stats updates stay
    // unfenced too, so no later fence accidentally persists the item.
    SiteScope stats_site(runtime, "memcached.cc:setNew.persist_stats",
                         thread);
    persistStat(shard.stats + offsetof(ShardStats, casId), cas,
                !bug(2) && !bug(4), thread);
    persistStat(shard.stats + offsetof(ShardStats, totalItems),
                stats.totalItems + 1, !bug(6) && !bug(4), thread);
    persistStat(shard.stats + offsetof(ShardStats, currItems),
                stats.currItems + 1, !bug(7) && !bug(4), thread);

    shard.index[key] = item;

    if (pmtest_ && thread == 0) {
        // PMTest needs one assertion per durability obligation — 410
        // annotations for real memcached (Section 8); these model that
        // density.
        pmtest_->isPersist(item, sizeof(Item));
        pmtest_->isOrderedBefore(item, sizeof(Item), commit_flag,
                                 sizeof(std::uint64_t));
        pmtest_->isPersist(shard.stats + offsetof(ShardStats, casId),
                           sizeof(std::uint64_t));
        pmtest_->isPersist(shard.stats + offsetof(ShardStats, totalItems),
                           sizeof(std::uint64_t));
        pmtest_->isPersist(shard.stats + offsetof(ShardStats, currItems),
                           sizeof(std::uint64_t));
    }
}

void
MiniMemcached::setExisting(Shard &shard, Addr item, std::uint64_t payload,
                           ThreadId thread)
{
    // Value update.
    SiteScope site(pool_.runtime(),
                   "memcached.cc:setExisting.update_value", thread);
    std::uint8_t value[valueBytes];
    for (std::size_t i = 0; i < valueBytes; ++i)
        value[i] = static_cast<std::uint8_t>(payload >> (8 * (i % 8)));
    pool_.writeBytes(item + offsetof(Item, value), value, valueBytes,
                     thread);
    if (bug(10)) {
        // Redundant flush: the value line flushed twice before its
        // fence.
        pool_.flush(item + offsetof(Item, value), valueBytes,
                    FlushKind::Clwb, thread);
        pool_.flush(item + offsetof(Item, value), valueBytes,
                    FlushKind::Clwb, thread);
        pool_.fence(thread);
    } else if (!bug(15)) {
        pool_.persist(item + offsetof(Item, value), valueBytes, thread);
    }

    // Bump the item's value length and CAS id. Both live in the item's
    // header line, so whichever store the active bug leaves unflushed
    // must come last — a later persist of the other field would write
    // the whole line back and mask the bug.
    ShardStats stats = pool_.load<ShardStats>(shard.stats);
    const std::uint64_t cas = stats.casId + 1;
    auto bump_val_len = [&] {
        pool_.store<std::uint32_t>(item + offsetof(Item, valLen),
                                   valueBytes, thread);
        if (!bug(16)) {
            pool_.persist(item + offsetof(Item, valLen),
                          sizeof(std::uint32_t), thread);
        }
    };
    auto bump_cas = [&] {
        // Bug 3 is the update-path twin of Figure 9a: the CAS bump is
        // never flushed.
        pool_.store<std::uint64_t>(item + offsetof(Item, cas), cas,
                                   thread);
        if (!bug(3)) {
            pool_.persist(item + offsetof(Item, cas),
                          sizeof(std::uint64_t), thread);
        }
    };
    SiteScope header_site(pool_.runtime(),
                          "memcached.cc:setExisting.bump_header", thread);
    if (bug(16)) {
        bump_cas();
        bump_val_len();
    } else {
        bump_val_len();
        bump_cas();
    }

    persistStat(shard.stats + offsetof(ShardStats, casId), cas, !bug(2),
                thread);

    if (pmtest_ && thread == 0) {
        pmtest_->isPersist(item + offsetof(Item, value), valueBytes);
        pmtest_->isPersist(item + offsetof(Item, cas),
                           sizeof(std::uint64_t));
        pmtest_->isPersist(item + offsetof(Item, valLen),
                           sizeof(std::uint32_t));
        pmtest_->isPersist(shard.stats + offsetof(ShardStats, casId),
                           sizeof(std::uint64_t));
    }
}

void
MiniMemcached::evictOne(Shard &shard, ThreadId thread)
{
    if (shard.lru.empty())
        return;
    const std::uint64_t victim_key = shard.lru.back();
    shard.lru.pop_back();
    shard.lruPos.erase(victim_key);

    auto it = shard.index.find(victim_key);
    if (it == shard.index.end())
        return;
    const Addr item = it->second;
    shard.index.erase(it);

    // Tombstone the item (valLen = 0) and persist the tombstone.
    SiteScope site(pool_.runtime(), "memcached.cc:evictOne.tombstone",
                   thread);
    pool_.store<std::uint32_t>(item + offsetof(Item, valLen), 0, thread);
    if (!bug(8)) {
        pool_.persist(item + offsetof(Item, valLen),
                      sizeof(std::uint32_t), thread);
    }
    shard.staleItem = item;

    ShardStats stats = pool_.load<ShardStats>(shard.stats);
    persistStat(shard.stats + offsetof(ShardStats, currItems),
                stats.currItems - 1, !bug(7), thread);
    ++shard.evictions;

    if (pmtest_ && thread == 0) {
        pmtest_->isPersist(item + offsetof(Item, valLen),
                           sizeof(std::uint32_t));
    }
}

bool
MiniMemcached::get(std::uint64_t key, ThreadId thread)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> guard(shard.lock);

    auto it = shard.index.find(key);
    if (it == shard.index.end())
        return false;

    if (bug(19)) {
        // Per-item fetch counter stored on the hot path, never flushed.
        SiteScope site(pool_.runtime(), "memcached.cc:get.bump_fetched",
                       thread);
        const Addr fetched = it->second + offsetof(Item, fetched);
        const bool annotate = pmtest_ && thread == 0;
        if (annotate)
            pmtest_->pmTestStart();
        pool_.store<std::uint32_t>(
            fetched, pool_.load<std::uint32_t>(fetched) + 1, thread);
        if (annotate) {
            pmtest_->isPersist(fetched, sizeof(std::uint32_t));
            pmtest_->pmTestEnd();
        }
    }

    // LRU touch (volatile).
    auto pos = shard.lruPos.find(key);
    if (pos != shard.lruPos.end()) {
        shard.lru.erase(pos->second);
        shard.lru.push_front(key);
        shard.lruPos[key] = shard.lru.begin();
    }
    return true;
}

bool
MiniMemcached::del(std::uint64_t key, ThreadId thread)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> guard(shard.lock);
    auto it = shard.index.find(key);
    if (it == shard.index.end())
        return false;
    const Addr item = it->second;
    shard.index.erase(it);
    auto pos = shard.lruPos.find(key);
    if (pos != shard.lruPos.end()) {
        shard.lru.erase(pos->second);
        shard.lruPos.erase(pos);
    }

    // Tombstone and retire the item, then the count — each persisted
    // before the next step (strict persistency).
    pool_.store<std::uint32_t>(item + offsetof(Item, valLen), 0, thread);
    pool_.persist(item + offsetof(Item, valLen), sizeof(std::uint32_t),
                  thread);
    shard.staleItem = item;
    ShardStats stats = pool_.load<ShardStats>(shard.stats);
    persistStat(shard.stats + offsetof(ShardStats, currItems),
                stats.currItems - 1, true, thread);
    return true;
}

std::uint64_t
MiniMemcached::currItems() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        total += pool_.load<ShardStats>(shard->stats).currItems;
    }
    return total;
}

std::uint64_t
MiniMemcached::casId() const
{
    std::uint64_t max_cas = 0;
    for (const auto &shard : shards_) {
        max_cas = std::max(max_cas,
                           pool_.load<ShardStats>(shard->stats).casId);
    }
    return max_cas;
}

std::uint64_t
MiniMemcached::evictions() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->evictions;
    return total;
}

void
MemcachedWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(32 << 20,
                                           options.operations * 64);
    PmemPool pool(runtime, pool_bytes, "memcached.pool",
                  options.trackPersistence);
    MiniMemcached cache(pool, options.faults, options.pmtest,
                        options.cacheCapacity ? options.cacheCapacity
                                              : (1 << 20));

    const std::uint64_t key_space =
        std::max<std::uint64_t>(1024, options.operations / 4);

    auto worker = [&](int tid, std::size_t ops, std::uint64_t seed) {
        Rng rng(seed);
        ZipfianGenerator keys(key_space, 0.99, seed ^ 0x5eedULL);
        for (std::size_t i = 0; i < ops; ++i) {
            runtime.appOp();
            const std::uint64_t key = keys.next();
            if (rng.nextBool(options.setRatio))
                cache.set(key, rng.next(), tid);
            else
                cache.get(key, tid);
        }
    };

    if (options.threads <= 1) {
        worker(0, options.operations, options.seed);
    } else {
        runtime.setThreadSafe(true);
        std::vector<std::thread> threads;
        const std::size_t per =
            options.operations / static_cast<std::size_t>(options.threads);
        for (int t = 0; t < options.threads; ++t) {
            threads.emplace_back(worker, t, per,
                                 options.seed + 7919 * (t + 1));
        }
        for (auto &thread : threads)
            thread.join();
        runtime.setThreadSafe(false);
    }

    runtime.programEnd();
}

} // namespace pmdb
