/**
 * @file
 * hashmap_tx: transactional persistent hashmap (PMDK example).
 *
 * Chained hashing with one transaction per insert, plus a
 * deferred-persistence statistics array: per-bucket access counters are
 * stored immediately but only flushed in periodic batches (their
 * durability is reconstructible, so the example defers the cost). That
 * deferral is what gives hashmap_tx the paper's distinctive profile:
 * many stores whose durability is *not* guaranteed by the nearest fence
 * (Figure 2a's long-distance tail), which keeps hundreds of records in
 * PMDebugger's AVL tree (Figure 11: 528 vs ≤25 elsewhere) and makes
 * hashmap_tx its least favourable benchmark (still 1.4x over
 * Pmemcheck).
 *
 * Fault-injection points:
 *  - "hmtx_skip_log_bucket":  bucket head update not logged/flushed
 *                             (lack durability in epoch);
 *  - "hmtx_double_log":       entry logged twice (redundant logging);
 *  - "hmtx_skip_stats_flush": statistics never flushed (no durability).
 */

#ifndef PMDB_WORKLOADS_HASHMAP_TX_HH
#define PMDB_WORKLOADS_HASHMAP_TX_HH

#include <cstdint>
#include <optional>

#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Persistent transactional hashmap with deferred statistics. */
class PersistentHashmapTx
{
  public:
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t value;
        Addr next;
    };

    struct Meta
    {
        Addr buckets;     // array of nBuckets tagged heads
        Addr bucketStats; // array of nBuckets access counters
        std::uint64_t nBuckets;
        std::uint64_t count;
    };

    /** Inserts between statistics batch flushes. */
    static constexpr std::size_t statsFlushPeriod = 1024;

    PersistentHashmapTx(PmemPool &pool, const FaultSet &faults,
                        PmTestDetector *pmtest = nullptr,
                        std::uint64_t n_buckets = 4096);

    void insert(std::uint64_t key, std::uint64_t value);

    /** Remove @p key; returns true if it was present. */
    bool remove(std::uint64_t key);

    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    std::uint64_t count() const;

    /** Flush the deferred statistics batch (called at teardown too). */
    void flushStats();

  private:
    Addr bucketAddr(std::uint64_t index) const;
    Addr statAddr(std::uint64_t index) const;

    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    Addr meta_;
    std::uint64_t nBuckets_;
    std::size_t sinceStatsFlush_ = 0;
    /** Counter addresses dirtied since the last batch flush. */
    std::vector<Addr> dirtyStats_;
};

/** The hashmap_tx workload of Table 4. */
class HashmapTxWorkload : public Workload
{
  public:
    const char *name() const override { return "hashmap_tx"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_HASHMAP_TX_HH
