#include "workloads/workload.hh"

#include "workloads/btree.hh"
#include "workloads/ctree.hh"
#include "workloads/hashmap_atomic.hh"
#include "workloads/hashmap_tx.hh"
#include "workloads/memcached.hh"
#include "workloads/rbtree.hh"
#include "workloads/redis.hh"
#include "workloads/rtree.hh"
#include "workloads/shared_queue.hh"
#include "workloads/synth_patterns.hh"
#include "workloads/synth_strand.hh"
#include "workloads/ycsb.hh"

namespace pmdb
{

std::vector<std::string>
workloadNames()
{
    return {"b_tree",       "c_tree",         "r_tree",
            "rb_tree",      "hashmap_tx",     "hashmap_atomic",
            "synth_strand", "synth_patterns", "memcached",
            "redis",        "shared_queue",
            "ycsb_a",       "ycsb_b",         "ycsb_c",
            "ycsb_d",       "ycsb_e",         "ycsb_f"};
}

std::vector<std::string>
microBenchmarkNames()
{
    return {"b_tree",     "c_tree",         "r_tree",      "rb_tree",
            "hashmap_tx", "hashmap_atomic", "synth_strand"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "b_tree")
        return std::make_unique<BTreeWorkload>();
    if (name == "c_tree")
        return std::make_unique<CTreeWorkload>();
    if (name == "r_tree")
        return std::make_unique<RTreeWorkload>();
    if (name == "rb_tree")
        return std::make_unique<RbTreeWorkload>();
    if (name == "hashmap_tx")
        return std::make_unique<HashmapTxWorkload>();
    if (name == "hashmap_atomic")
        return std::make_unique<HashmapAtomicWorkload>();
    if (name == "synth_strand")
        return std::make_unique<SynthStrandWorkload>();
    if (name == "synth_patterns")
        return std::make_unique<SynthPatternsWorkload>();
    if (name == "memcached")
        return std::make_unique<MemcachedWorkload>();
    if (name == "redis")
        return std::make_unique<RedisWorkload>();
    if (name == "shared_queue")
        return std::make_unique<SharedQueueWorkload>();
    if (name.size() == 6 && name.rfind("ycsb_", 0) == 0 &&
        name[5] >= 'a' && name[5] <= 'f') {
        return std::make_unique<YcsbWorkload>(name[5]);
    }
    return nullptr;
}

} // namespace pmdb
