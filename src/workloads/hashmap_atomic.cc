#include "workloads/hashmap_atomic.hh"

#include <cstring>

#include "common/rng.hh"
#include "crashsim/capture.hh"

namespace pmdb
{

std::uint64_t
hashmapAtomicTaggedValue(std::uint64_t key)
{
    // |1 keeps the tag nonzero even in the (astronomically unlikely)
    // case mix64 returns 0 — a zeroed, never-persisted entry must
    // always fail the tag check.
    return mix64(key ^ 0x686d61746f6d6963ULL) | 1;
}

CrossFailureChecker::Verifier
hashmapAtomicRecoveryVerifier(Addr meta_addr)
{
    using Meta = PersistentHashmapAtomic::Meta;
    using Entry = PersistentHashmapAtomic::Entry;
    return [meta_addr](const std::vector<std::uint8_t> &image)
               -> std::string {
        if (meta_addr + sizeof(Meta) > image.size())
            return "hashmap_atomic recovery: metadata out of bounds";
        Meta meta;
        std::memcpy(&meta, image.data() + meta_addr, sizeof(meta));
        if (meta.buckets == 0 || meta.nBuckets == 0 ||
            meta.buckets + meta.nBuckets * sizeof(Addr) > image.size())
            return "hashmap_atomic recovery: bucket table corrupt";

        std::uint64_t steps = 0;
        for (std::uint64_t b = 0; b < meta.nBuckets; ++b) {
            Addr cursor = 0;
            std::memcpy(&cursor,
                        image.data() + meta.buckets + b * sizeof(Addr),
                        sizeof(cursor));
            while (cursor != 0) {
                if (cursor % 8 != 0 ||
                    cursor + sizeof(Entry) > image.size())
                    return "hashmap_atomic recovery: bucket head "
                           "dangles out of bounds";
                if (++steps > (1u << 22))
                    return "hashmap_atomic recovery: chain walk "
                           "diverges (cycle?)";
                Entry entry;
                std::memcpy(&entry, image.data() + cursor,
                            sizeof(entry));
                if (entry.value != hashmapAtomicTaggedValue(entry.key)) {
                    return "hashmap_atomic recovery: reachable entry "
                           "for key " +
                           std::to_string(entry.key) +
                           " is torn or never persisted";
                }
                cursor = entry.next;
            }
        }
        return "";
    };
}

PersistentHashmapAtomic::PersistentHashmapAtomic(PmemPool &pool,
                                                 const FaultSet &faults,
                                                 PmTestDetector *pmtest,
                                                 std::uint64_t n_buckets)
    : pool_(pool), faults_(faults), pmtest_(pmtest), nBuckets_(n_buckets)
{
    meta_ = pool_.root(sizeof(Meta));
    pool_.registerVariable("hashmap_atomic.meta", meta_, sizeof(Meta));

    Meta meta = pool_.load<Meta>(meta_);
    if (meta.buckets == 0) {
        SiteScope site(pool_.runtime(), "hashmap_atomic.cc:create");
        const Addr buckets = pool_.alloc(nBuckets_ * sizeof(Addr));

        // The data_store.c pattern: creation runs inside a transaction.
        Transaction tx(pool_);
        tx.begin();
        tx.addRange(meta_, sizeof(Meta));
        meta.buckets = buckets;
        meta.nBuckets = nBuckets_;
        meta.count = 0;
        pool_.store(meta_, meta);
        if (faults_.active("pmdk_create_bug")) {
            // Figure 9b: create_hashmap calls pmemobj_persist inside
            // the epoch — the redundant fence confirmed by Intel.
            pool_.persist(meta_, sizeof(Meta));
        }
        tx.commit();
    } else {
        nBuckets_ = meta.nBuckets;
    }
}

void
PersistentHashmapAtomic::insert(std::uint64_t key, std::uint64_t value)
{
    if (pmtest_)
        pmtest_->pmTestStart();

    const Meta meta = pool_.load<Meta>(meta_);
    const std::uint64_t bucket = mix64(key) % nBuckets_;
    const Addr slot = meta.buckets + bucket * sizeof(Addr);

    // Update in place if the key exists (strict store + persist).
    Addr cursor = pool_.load<Addr>(slot);
    while (cursor) {
        Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key) {
            SiteScope site(pool_.runtime(),
                           "hashmap_atomic.cc:insert.update_value");
            const Addr value_addr = cursor + offsetof(Entry, value);
            pool_.store<std::uint64_t>(value_addr, value);
            pool_.persist(value_addr, sizeof(std::uint64_t));
            if (pmtest_) {
                pmtest_->isPersist(value_addr, sizeof(std::uint64_t));
                pmtest_->pmTestEnd();
            }
            return;
        }
        cursor = entry.next;
    }

    // Allocate and fill the new entry. All three field stores land in
    // the entry's single cache line, so one CLWB writes them back
    // collectively.
    const Addr fresh = pool_.alloc(sizeof(Entry));
    pool_.registerVariable("hashmap_atomic.pending_entry", fresh,
                           sizeof(Entry));
    pool_.registerVariable("hashmap_atomic.pending_bucket", slot,
                           sizeof(Addr));

    PmRuntime &runtime = pool_.runtime();
    {
        SiteScope site(runtime, "hashmap_atomic.cc:insert.fill_entry");
        pool_.store<std::uint64_t>(fresh + offsetof(Entry, key), key);
        pool_.store<std::uint64_t>(fresh + offsetof(Entry, value),
                                   value);
        pool_.store<Addr>(fresh + offsetof(Entry, next),
                          pool_.load<Addr>(slot));
    }

    if (faults_.active("hmatomic_bucket_before_entry")) {
        // Order bug: publish the bucket head first, then persist the
        // entry — a crash between the two leaves a dangling head.
        SiteScope site(runtime,
                       "hashmap_atomic.cc:insert.publish_entry");
        pool_.store<Addr>(slot, fresh);
        pool_.persist(slot, sizeof(Addr));
        pool_.persist(fresh, sizeof(Entry));
    } else if (faults_.active("hmatomic_skip_entry_flush")) {
        // Durability bug: the entry itself is never flushed.
        SiteScope site(runtime,
                       "hashmap_atomic.cc:insert.publish_entry");
        pool_.fence();
        pool_.store<Addr>(slot, fresh);
        pool_.persist(slot, sizeof(Addr));
    } else if (faults_.active("hmatomic_double_flush")) {
        // Performance bug: the entry line is flushed twice before its
        // fence (redundant flush).
        {
            SiteScope persist_site(
                runtime, "hashmap_atomic.cc:insert.persist_entry");
            pool_.flush(fresh, sizeof(Entry));
            pool_.flush(fresh, sizeof(Entry));
            pool_.fence();
        }
        SiteScope site(runtime,
                       "hashmap_atomic.cc:insert.publish_entry");
        pool_.store<Addr>(slot, fresh);
        pool_.persist(slot, sizeof(Addr));
    } else {
        {
            SiteScope persist_site(
                runtime, "hashmap_atomic.cc:insert.persist_entry");
            pool_.persist(fresh, sizeof(Entry));
        }
        SiteScope site(runtime,
                       "hashmap_atomic.cc:insert.publish_entry");
        pool_.store<Addr>(slot, fresh);
        pool_.persist(slot, sizeof(Addr));
    }

    if (faults_.active("hmatomic_flush_empty")) {
        // Performance bug: a CLF on a line no store ever touched
        // (scratch[5] sits in the root object's second cache line,
        // which holds nothing else).
        SiteScope site(runtime,
                       "hashmap_atomic.cc:insert.audit_scratch");
        pool_.flush(meta_ + offsetof(Meta, scratch) +
                        5 * sizeof(std::uint64_t),
                    sizeof(std::uint64_t));
        pool_.fence();
    }

    // Persist the element count (strict update).
    SiteScope count_site(runtime, "hashmap_atomic.cc:insert.bump_count");
    const Addr count_addr = meta_ + offsetof(Meta, count);
    pool_.store<std::uint64_t>(count_addr,
                               pool_.load<std::uint64_t>(count_addr) + 1);
    pool_.persist(count_addr, sizeof(std::uint64_t));

    if (pmtest_) {
        pmtest_->isPersist(fresh, sizeof(Entry));
        pmtest_->isOrderedBefore(fresh, sizeof(Entry), slot, sizeof(Addr));
        pmtest_->pmTestEnd();
    }
}

bool
PersistentHashmapAtomic::remove(std::uint64_t key)
{
    const Meta meta = pool_.load<Meta>(meta_);
    const std::uint64_t bucket = mix64(key) % nBuckets_;
    const Addr slot = meta.buckets + bucket * sizeof(Addr);

    Addr prev = 0;
    Addr cursor = pool_.load<Addr>(slot);
    while (cursor) {
        const Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key) {
            // Atomically redirect the predecessor pointer, persist it,
            // then retire the entry and the count — each step durable
            // before the next (strict persistency).
            if (prev) {
                const Addr link = prev + offsetof(Entry, next);
                pool_.store<Addr>(link, entry.next);
                pool_.persist(link, sizeof(Addr));
            } else {
                pool_.store<Addr>(slot, entry.next);
                pool_.persist(slot, sizeof(Addr));
            }
            pool_.freeObj(cursor);
            const Addr count_addr = meta_ + offsetof(Meta, count);
            pool_.store<std::uint64_t>(
                count_addr, pool_.load<std::uint64_t>(count_addr) - 1);
            pool_.persist(count_addr, sizeof(std::uint64_t));
            return true;
        }
        prev = cursor;
        cursor = entry.next;
    }
    return false;
}

std::optional<std::uint64_t>
PersistentHashmapAtomic::lookup(std::uint64_t key) const
{
    const Meta meta = pool_.load<Meta>(meta_);
    const std::uint64_t bucket = mix64(key) % nBuckets_;
    Addr cursor = pool_.load<Addr>(meta.buckets + bucket * sizeof(Addr));
    while (cursor) {
        const Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key)
            return entry.value;
        cursor = entry.next;
    }
    return std::nullopt;
}

std::uint64_t
PersistentHashmapAtomic::count() const
{
    return pool_.load<Meta>(meta_).count;
}

void
HashmapAtomicWorkload::run(PmRuntime &runtime,
                           const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(16 << 20,
                                           options.operations * 256);
    PmemPool pool(runtime, pool_bytes, "hashmap_atomic.pool",
                  options.trackPersistence);
    PersistentHashmapAtomic map(pool, options.faults, options.pmtest);

    if (options.crashsim) {
        options.crashsim->adopt(
            pool.device(), hashmapAtomicRecoveryVerifier(map.metaAddr()));
    }

    Rng rng(options.seed);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        const std::uint64_t key = rng.next();
        // Crashsim-verified runs store the key's tag so the recovery
        // verifier can prove each reachable entry fully persisted.
        map.insert(key, options.crashsim ? hashmapAtomicTaggedValue(key)
                                         : i);
    }

    runtime.programEnd();
}

} // namespace pmdb
