#include "workloads/shared_queue.hh"

#include "common/logging.hh"
#include "common/types.hh"
#include "pmem/shared_device.hh"

namespace pmdb
{

namespace
{

/** Pool-data offsets: one cache line per field. */
constexpr Addr headAddr = 0;
constexpr Addr tailAddr = cacheLineSize;
constexpr Addr entriesBase = 2 * cacheLineSize;

Addr
entryAddr(std::size_t index)
{
    return entriesBase + static_cast<Addr>(index) * cacheLineSize;
}

std::uint64_t
valueFor(std::uint64_t seed, std::size_t index)
{
    // Deterministic, seed-mixed payload the consumer re-derives.
    return (seed + index) * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
}

enum class Variant
{
    Clean,
    SkipEntryPersist,
    PublishPendingEntry,
    EpochOverlap,
};

Variant
variantOf(const FaultSet &faults)
{
    if (faults.active("sq_skip_entry_persist"))
        return Variant::SkipEntryPersist;
    if (faults.active("sq_publish_pending_entry"))
        return Variant::PublishPendingEntry;
    if (faults.active("sq_epoch_overlap"))
        return Variant::EpochOverlap;
    return Variant::Clean;
}

void
runProducer(SharedPmemPool &pool, Variant variant, std::size_t operations,
            std::uint64_t seed)
{
    if (variant == Variant::EpochOverlap) {
        // Three sub-turns per op: the producer's epoch stays open
        // across the consumer's turn, so the consumer's claim store
        // lands inside it.
        for (std::size_t i = 0; i < operations; ++i) {
            pool.coordWait(0, 3 * i);
            pool.epochBegin();
            pool.store<std::uint64_t>(entryAddr(i), valueFor(seed, i));
            // Durable before epoch end: each writer's *own* epoch
            // discipline is spotless — the bug is purely that the
            // epoch is still open when the other writer stores into
            // its lines.
            pool.persist(entryAddr(i), sizeof(std::uint64_t));
            pool.coordStore(0, 3 * i + 1);

            pool.coordWait(0, 3 * i + 2);
            pool.epochEnd();
            pool.store<std::uint64_t>(tailAddr, i + 1);
            pool.persist(tailAddr, sizeof(std::uint64_t));
            pool.coordStore(0, 3 * i + 3);
        }
        return;
    }

    for (std::size_t i = 0; i < operations; ++i) {
        pool.coordWait(0, 2 * i);
        pool.store<std::uint64_t>(entryAddr(i), valueFor(seed, i));
        switch (variant) {
          case Variant::Clean:
            // Entry durable before the tail publishes it.
            pool.persist(entryAddr(i), sizeof(std::uint64_t));
            pool.store<std::uint64_t>(tailAddr, i + 1);
            pool.persist(tailAddr, sizeof(std::uint64_t));
            break;
          case Variant::SkipEntryPersist:
            // Publish with the entry still dirty; the consumer reads
            // bytes a crash would erase.
            pool.store<std::uint64_t>(tailAddr, i + 1);
            pool.persist(tailAddr, sizeof(std::uint64_t));
            break;
          case Variant::PublishPendingEntry:
            // The tail-persist fence runs *before* the entry's CLF, so
            // the entry is flushed-but-unfenced when the consumer
            // reads it. (Flushing before that fence would complete the
            // entry's writeback too — a fence completes all of this
            // writer's pending lines.)
            pool.store<std::uint64_t>(tailAddr, i + 1);
            pool.persist(tailAddr, sizeof(std::uint64_t));
            pool.flush(entryAddr(i), sizeof(std::uint64_t));
            break;
          case Variant::EpochOverlap:
            break; // handled above
        }
        pool.coordStore(0, 2 * i + 1);
    }

    // End-of-run repair: make this writer's own stream clean. The
    // per-session durability detector sees every store eventually
    // durable; only the merged cross-writer order exposes the bug.
    pool.coordWait(0, 2 * operations);
    if (variant == Variant::SkipEntryPersist) {
        for (std::size_t i = 0; i < operations; ++i)
            pool.flush(entryAddr(i), sizeof(std::uint64_t));
        pool.fence();
    } else if (variant == Variant::PublishPendingEntry) {
        pool.fence();
    }
}

void
runConsumer(SharedPmemPool &pool, Variant variant, std::size_t operations,
            std::uint64_t seed)
{
    if (variant == Variant::EpochOverlap) {
        for (std::size_t i = 0; i < operations; ++i) {
            pool.coordWait(0, 3 * i + 1);
            pool.epochBegin();
            // Claim word shares the entry's cache line — and the
            // producer's epoch over that line is still open.
            pool.store<std::uint64_t>(entryAddr(i) + 8, i + 1);
            pool.persist(entryAddr(i) + 8, sizeof(std::uint64_t));
            pool.epochEnd();
            pool.coordStore(0, 3 * i + 2);
        }
        return;
    }

    for (std::size_t i = 0; i < operations; ++i) {
        pool.coordWait(0, 2 * i + 1);
        const auto tail = pool.load<std::uint64_t>(tailAddr);
        if (tail != i + 1)
            panic("shared_queue: consumer saw tail " +
                  std::to_string(tail) + " at op " + std::to_string(i));
        const auto value = pool.load<std::uint64_t>(entryAddr(i));
        if (value != valueFor(seed, i))
            panic("shared_queue: consumer read corrupt entry " +
                  std::to_string(i));
        pool.store<std::uint64_t>(headAddr, i + 1);
        pool.persist(headAddr, sizeof(std::uint64_t));
        pool.coordStore(0, 2 * i + 2);
    }
}

} // namespace

std::size_t
SharedQueueWorkload::poolBytesFor(std::size_t operations)
{
    return entriesBase + operations * cacheLineSize;
}

void
SharedQueueWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    if (options.sharedPoolPath.empty())
        panic("shared_queue: options.sharedPoolPath is required");
    if (options.sharedWriter != producerWriter &&
        options.sharedWriter != consumerWriter) {
        panic("shared_queue: sharedWriter must be 1 (producer) or 2 "
              "(consumer), got " + std::to_string(options.sharedWriter));
    }

    SharedPmemPool pool(runtime, options.sharedPoolPath,
                        options.sharedWriter);
    if (!pool.valid())
        panic("shared_queue: " + pool.error());

    const Variant variant = variantOf(options.faults);
    if (options.sharedWriter == producerWriter)
        runProducer(pool, variant, options.operations, options.seed);
    else
        runConsumer(pool, variant, options.operations, options.seed);
}

const std::vector<CrossprocCase> &
crossprocCases()
{
    static const std::vector<CrossprocCase> cases = {
        {"skip_entry_persist", "sq_skip_entry_persist",
         "unflushed-cross-writer-read"},
        {"publish_pending_entry", "sq_publish_pending_entry",
         "publish-before-persist"},
        {"epoch_overlap", "sq_epoch_overlap",
         "cross-writer-epoch-overlap"},
    };
    return cases;
}

} // namespace pmdb
