/**
 * @file
 * synth_strand: synthetic strand-persistency benchmark (Table 4).
 *
 * No shipping hardware supports strand persistency, so — like the
 * paper — we synthesize a workload: two index structures (a B-tree-like
 * and a crit-bit-like node store, after the paper's b_tree + c_tree
 * pairing) are updated in two independent strands. Within a strand,
 * updates are ordered with persist barriers; the strands are mutually
 * unordered except at explicit JoinStrand points between batches.
 *
 * Fault-injection points:
 *  - "strand_cross_persist":  strand 1 flushes a location whose
 *                             ordering contract requires strand 0 to
 *                             persist another location first
 *                             (lack ordering in strands, Figure 7b);
 *  - "strand_missing_barrier": a strand omits its persist barrier
 *                             (no durability).
 */

#ifndef PMDB_WORKLOADS_SYNTH_STRAND_HH
#define PMDB_WORKLOADS_SYNTH_STRAND_HH

#include "pmdk/pool.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** The synth_strand workload of Table 4. */
class SynthStrandWorkload : public Workload
{
  public:
    const char *name() const override { return "synth_strand"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Strand;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;

    std::string
    orderSpecText() const override
    {
        // Shared contract: A (strand 0's header) must persist before B
        // (the shared publication slot).
        return "persist_before synth_strand.A synth_strand.B\n";
    }
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_SYNTH_STRAND_HH
