/**
 * @file
 * Harness gluing the crash-state exploration engine to the bug suite
 * and the evaluation workloads.
 *
 * Two entry points:
 *  - runCrashsimCase(): run one bug-suite case (buggy and correct
 *    variants) with a CrashsimSession adopted at armCrossFailure time,
 *    reporting both what the single-image end-state checker sees and
 *    what full crash-point exploration finds.
 *  - runCrashsimWorkload(): run an evaluation workload (b_tree,
 *    hashmap_atomic) with its self-contained recovery verifier adopted
 *    and explore every captured crash point.
 *
 * crashsimOnlyCases() adds seeded bugs the single-image checker is
 * structurally unable to find: inconsistencies that exist only at an
 * intermediate crash point or only under a partial pending-line
 * landing, while the final durable state is consistent.
 */

#ifndef PMDB_WORKLOADS_CRASHSIM_RUNNER_HH
#define PMDB_WORKLOADS_CRASHSIM_RUNNER_HH

#include <string>
#include <vector>

#include "crashsim/capture.hh"
#include "workloads/bug_suite.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Result of running one bug case under crash-state exploration. */
struct CrashsimCaseOutcome
{
    /**
     * The existing single-image checker (CrossFailureChecker at the
     * scenario's own check points) reported the bug on the buggy
     * variant.
     */
    bool singleImageFound = false;
    /** The exploration engine found it on the buggy variant. */
    bool engineFound = false;
    /** Full exploration result of the buggy variant. */
    CrashsimResult buggy;
    /** Full exploration result of the correct variant (should be 0). */
    CrashsimResult clean;
};

/**
 * Run @p bug_case twice (buggy, correct) with a CrashsimSession using
 * @p options adopted when the scenario arms its verifier, under
 * dispatch mode @p mode.
 */
CrashsimCaseOutcome
runCrashsimCase(const BugCase &bug_case, const CrashsimOptions &options,
                DispatchMode mode = DispatchMode::PerEvent);

/**
 * Seeded crash-consistency bugs only reachable through crash-state
 * enumeration (kept out of bugSuite(), whose 78 cases mirror Table 6):
 *
 *  - "cs_partial_pair": two invariant-linked fields flushed under one
 *    fence; only a partial landing (dependent line without its
 *    prerequisite) violates the invariant. The end state is consistent,
 *    so single-image checking at any policy misses it.
 *  - "cs_intermediate_window": a two-step update whose intermediate
 *    durable state is inconsistent but whose final state is repaired —
 *    visible only by crashing at the interior fence.
 *  - "cs_log_truncation_window": a *correct* transactional program.
 *    With epochAtomic exploration (the default) it yields zero
 *    findings; disabling epochAtomic surfaces the substrate's
 *    single-drain commit window (log truncation and data sharing one
 *    fence), demonstrating why the coalescing exists. Its buggy and
 *    correct variants run the same program.
 */
const std::vector<BugCase> &crashsimOnlyCases();

/**
 * Run workload @p name with a crashsim session adopted (the workload
 * must support WorkloadOptions::crashsim) and explore the capture.
 * Findings are reported through @p debugger when given.
 */
CrashsimResult
runCrashsimWorkload(const std::string &name, WorkloadOptions wl_options,
                    const CrashsimOptions &options,
                    DispatchMode mode = DispatchMode::PerEvent,
                    PmDebugger *debugger = nullptr);

} // namespace pmdb

#endif // PMDB_WORKLOADS_CRASHSIM_RUNNER_HH
