#include "workloads/ycsb.hh"

#include "common/logging.hh"
#include "pmdk/pool.hh"
#include "workloads/memcached.hh"

namespace pmdb
{

YcsbGenerator::YcsbGenerator(char load, std::uint64_t record_count,
                             std::uint64_t seed)
    : load_(load), records_(record_count), insertCursor_(record_count),
      zipf_(record_count, seed), rng_(seed ^ 0xabcdULL)
{
    if (load < 'a' || load > 'f')
        fatal("YcsbGenerator: load must be 'a'..'f'");
}

YcsbOp
YcsbGenerator::next()
{
    YcsbOp op;
    op.scanLength = 0;
    const double p = rng_.nextDouble();

    switch (load_) {
      case 'a':
        op.kind = p < 0.5 ? YcsbOp::Read : YcsbOp::Update;
        op.key = zipf_.next();
        break;
      case 'b':
        op.kind = p < 0.95 ? YcsbOp::Read : YcsbOp::Update;
        op.key = zipf_.next();
        break;
      case 'c':
        op.kind = YcsbOp::Read;
        op.key = zipf_.next();
        break;
      case 'd':
        if (p < 0.95) {
            // Read latest: skew toward recently inserted keys.
            op.kind = YcsbOp::Read;
            const std::uint64_t back = zipf_.next() % records_;
            op.key = insertCursor_ > back ? insertCursor_ - back - 1 : 0;
        } else {
            op.kind = YcsbOp::Insert;
            op.key = insertCursor_++;
        }
        break;
      case 'e':
        if (p < 0.95) {
            op.kind = YcsbOp::Scan;
            op.key = zipf_.next();
            op.scanLength =
                1 + static_cast<int>(rng_.nextBounded(100));
        } else {
            op.kind = YcsbOp::Insert;
            op.key = insertCursor_++;
        }
        break;
      case 'f':
      default:
        op.kind = p < 0.5 ? YcsbOp::Read : YcsbOp::ReadModifyWrite;
        op.key = zipf_.next();
        break;
    }
    return op;
}

void
YcsbWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(32 << 20,
                                           options.operations * 96);
    PmemPool pool(runtime, pool_bytes, "ycsb.pool",
                  options.trackPersistence);
    MiniMemcached cache(pool, options.faults, options.pmtest);

    const std::uint64_t records =
        std::max<std::uint64_t>(1024, options.operations / 4);

    // Load phase: populate the records.
    Rng rng(options.seed);
    for (std::uint64_t key = 0; key < records; ++key)
        cache.set(key, rng.next());

    // Run phase.
    YcsbGenerator gen(load_, records, options.seed);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        const YcsbOp op = gen.next();
        switch (op.kind) {
          case YcsbOp::Read:
            cache.get(op.key);
            break;
          case YcsbOp::Update:
          case YcsbOp::Insert:
            cache.set(op.key, rng.next());
            break;
          case YcsbOp::Scan:
            for (int k = 0; k < op.scanLength; ++k)
                cache.get(op.key + k);
            break;
          case YcsbOp::ReadModifyWrite:
            cache.get(op.key);
            cache.set(op.key, rng.next());
            break;
        }
    }

    runtime.programEnd();
}

} // namespace pmdb
