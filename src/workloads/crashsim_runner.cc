#include "workloads/crashsim_runner.hh"

#include <cstring>

#include "common/logging.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"

namespace pmdb
{

namespace
{

/** One variant run: scenario under a capture session, then explore. */
CrashsimResult
runCaseVariant(const BugCase &bug_case, bool buggy,
               const CrashsimOptions &options, DispatchMode mode,
               bool *single_image_found)
{
    PmRuntime runtime;
    runtime.setDispatchMode(mode);

    DebuggerConfig config;
    config.model = bug_case.model;
    if (!bug_case.orderSpec.empty())
        config.orderSpec = OrderSpec::fromText(bug_case.orderSpec);
    PmDebugger debugger(std::move(config));
    runtime.attach(&debugger);

    CrashsimSession session(options);
    CaseEnv env{runtime};
    env.pmdebugger = &debugger;
    env.crashsim = &session;
    env.buggy = buggy;

    bug_case.scenario(env);
    runtime.programEnd();
    runtime.drain();
    runtime.detach(&debugger);

    if (single_image_found) {
        *single_image_found =
            debugger.bugs().hasAny(BugType::CrossFailureSemantic);
    }
    return session.explore();
}

} // namespace

CrashsimCaseOutcome
runCrashsimCase(const BugCase &bug_case, const CrashsimOptions &options,
                DispatchMode mode)
{
    CrashsimCaseOutcome outcome;
    outcome.buggy = runCaseVariant(bug_case, true, options, mode,
                                   &outcome.singleImageFound);
    outcome.engineFound = !outcome.buggy.findings.empty();
    outcome.clean =
        runCaseVariant(bug_case, false, options, mode, nullptr);
    return outcome;
}

namespace
{

using Scenario = std::function<void(CaseEnv &)>;

constexpr std::size_t csPoolBytes = 1 << 20;

/**
 * Two invariant-linked fields (b == 1 implies a == 1) flushed under
 * ONE fence when buggy: only the partial landing {b} breaks the
 * invariant, and the final durable state is consistent. The correct
 * variant orders a's durability before b's store.
 */
Scenario
csPartialPair()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, csPoolBytes, "cs.pool");
        const Addr a = pool.alloc(64);
        const Addr b = pool.alloc(64);

        auto verify =
            [a, b](const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t va = 0, vb = 0;
            std::memcpy(&va, image.data() + a, 8);
            std::memcpy(&vb, image.data() + b, 8);
            if (vb == 1 && va != 1)
                return "recovery reads b committed without its "
                       "prerequisite a";
            return "";
        };
        env.armCrossFailure(pool.device(), verify);

        if (env.buggy) {
            pool.store<std::uint64_t>(a, 1);
            pool.store<std::uint64_t>(b, 1);
            pool.flush(a, 8);
            pool.flush(b, 8);
            pool.fence(); // both pending under one fence
        } else {
            pool.store<std::uint64_t>(a, 1);
            pool.persist(a, 8); // a durable first
            pool.store<std::uint64_t>(b, 1);
            pool.persist(b, 8);
        }

        env.checkCrossFailure(pool.device(), verify);
    };
}

/**
 * Two-step counter update whose interior durable state (c1 == 2,
 * c2 == 1) is inconsistent but repaired by the second step: visible
 * only by crashing at the interior fence. The correct variant updates
 * both inside a transaction.
 */
Scenario
csIntermediateWindow()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, csPoolBytes, "cs.pool");
        const Addr c1 = pool.alloc(64);
        const Addr c2 = pool.alloc(64);
        pool.store<std::uint64_t>(c1, 1);
        pool.store<std::uint64_t>(c2, 1);
        pool.persist(c1, 8);
        pool.persist(c2, 8);

        auto verify =
            [c1, c2](const std::vector<std::uint8_t> &image) -> std::string {
            std::uint64_t v1 = 0, v2 = 0;
            std::memcpy(&v1, image.data() + c1, 8);
            std::memcpy(&v2, image.data() + c2, 8);
            if (v1 != v2)
                return "recovery reads unbalanced counters";
            return "";
        };
        env.armCrossFailure(pool.device(), verify);

        if (env.buggy) {
            pool.store<std::uint64_t>(c1, 2);
            pool.persist(c1, 8); // interior point: c1 == 2, c2 == 1
            pool.store<std::uint64_t>(c2, 2);
            pool.persist(c2, 8); // final state balanced again
        } else {
            Transaction tx(pool);
            tx.begin();
            tx.addRange(c1, 8);
            tx.addRange(c2, 8);
            pool.store<std::uint64_t>(c1, 2);
            pool.store<std::uint64_t>(c2, 2);
            tx.commit();
        }

        env.checkCrossFailure(pool.device(), verify);
    };
}

/**
 * A correct transactional update of an invariant-linked pair. The
 * verifier runs undo-log recovery before checking, so every reachable
 * image is consistent — except the partial landings inside the commit
 * barrier itself (data lands, log truncation fences away the undo
 * entries), which only a non-epoch-atomic sweep enumerates.
 */
Scenario
csLogTruncationWindow()
{
    return [](CaseEnv &env) {
        PmemPool pool(env.runtime, csPoolBytes, "cs.pool");
        const Addr a = pool.alloc(64);
        const Addr b = pool.alloc(64);
        pool.store<std::uint64_t>(a, 1);
        pool.store<std::uint64_t>(b, 1);
        pool.persist(a, 8);
        pool.persist(b, 8);

        const TxRecovery::TxLogRegion log = TxRecovery::logRegionOf(pool);
        auto verify =
            [a, b, log](const std::vector<std::uint8_t> &image)
            -> std::string {
            std::vector<std::uint8_t> recovered = image;
            TxRecovery::rollbackImage(log.base, log.size, recovered);
            std::uint64_t va = 0, vb = 0;
            std::memcpy(&va, recovered.data() + a, 8);
            std::memcpy(&vb, recovered.data() + b, 8);
            if (va != vb)
                return "recovery reads a torn pair after rollback";
            return "";
        };
        env.armCrossFailure(pool.device(), verify);

        // Same (correct) program for both variants: the window under
        // scrutiny is the substrate's, not the program's.
        Transaction tx(pool);
        tx.begin();
        tx.addRange(a, 8);
        tx.addRange(b, 8);
        pool.store<std::uint64_t>(a, 2);
        pool.store<std::uint64_t>(b, 2);
        tx.commit();

        env.checkCrossFailure(pool.device(), verify);
    };
}

} // namespace

const std::vector<BugCase> &
crashsimOnlyCases()
{
    static const std::vector<BugCase> cases = [] {
        std::vector<BugCase> list;
        int next_id = 1001; // clear of the 78 Table 6 ids

        auto add = [&](std::string name, Scenario scenario) {
            BugCase bug_case;
            bug_case.id = next_id++;
            bug_case.name = std::move(name);
            bug_case.expected = BugType::CrossFailureSemantic;
            bug_case.model = PersistencyModel::Epoch;
            bug_case.scenario = std::move(scenario);
            list.push_back(std::move(bug_case));
        };

        add("cs_partial_pair", csPartialPair());
        add("cs_intermediate_window", csIntermediateWindow());
        add("cs_log_truncation_window", csLogTruncationWindow());
        return list;
    }();
    return cases;
}

CrashsimResult
runCrashsimWorkload(const std::string &name, WorkloadOptions wl_options,
                    const CrashsimOptions &options, DispatchMode mode,
                    PmDebugger *debugger)
{
    auto workload = makeWorkload(name);
    if (!workload)
        fatal("crashsim: unknown workload " + name);

    PmRuntime runtime;
    runtime.setDispatchMode(mode);
    CrashsimSession session(options);
    wl_options.crashsim = &session;
    workload->run(runtime, wl_options);
    runtime.drain();
    if (!session.hasVerifier())
        fatal("crashsim: workload " + name +
              " does not ship a recovery verifier");
    return session.explore(debugger);
}

} // namespace pmdb
