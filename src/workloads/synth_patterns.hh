/**
 * @file
 * synth_patterns: a parameterized PM-pattern generator.
 *
 * The paper's characterization (Section 3) motivates PMDebugger's
 * design with three measurable properties of PM programs: the
 * store→durability-fence distance distribution, the fraction of
 * collective writebacks, and the instruction mix. This workload
 * *generates* streams with configurable values of exactly those
 * properties, which serves three purposes:
 *
 *  - property-testing the characterization tool (generate with known
 *    parameters, measure, compare);
 *  - sweeping the pattern space in benchmarks (how does each
 *    detector's cost move as the paper's patterns degrade?);
 *  - standing in for the WHISPER suite's diversity of PM idioms,
 *    which the paper also characterizes.
 */

#ifndef PMDB_WORKLOADS_SYNTH_PATTERNS_HH
#define PMDB_WORKLOADS_SYNTH_PATTERNS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

#include "pmdk/pool.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Parameters controlling the generated PM pattern. */
struct PatternParams
{
    /**
     * Probability that an operation's stores target one cache line
     * (collective writeback) rather than several (dispersed).
     */
    double collectiveRatio = 0.8;

    /** Stores per operation (controls the instruction mix). */
    int storesPerOp = 4;

    /**
     * Probability weights of the store→fence distance buckets 1..5
     * and >5. Distance d is realised by deferring the CLF for the
     * operation's stores across d-1 later fences.
     */
    std::array<double, 6> distanceWeights = {0.85, 0.05, 0.04,
                                             0.02,  0.02, 0.02};
};

/**
 * Generates the configured pattern against a pool. Exposed as a class
 * so tests and benches can drive it directly with custom parameters.
 */
class PatternGenerator
{
  public:
    PatternGenerator(PmemPool &pool, PatternParams params,
                     std::uint64_t seed, std::size_t region_slots);

    /** Emit one operation (stores now, CLF after the chosen delay). */
    void operation();

    /** Flush and fence everything still deferred. */
    void drain();

  private:
    struct Deferred
    {
        Addr addr = 0;
        std::uint32_t size = 0;
        /** Remaining fences before this range's CLF is issued. */
        int fencesLeft = 0;
    };

    int sampleDistance();
    std::size_t slotBytes() const;

    PmemPool &pool_;
    PatternParams params_;
    Rng rng_;
    Addr region_;
    std::size_t slots_;
    std::size_t next_ = 0;
    std::vector<Deferred> deferred_;
};

/** The synth_patterns workload (defaults approximate Figure 2). */
class SynthPatternsWorkload : public Workload
{
  public:
    const char *name() const override { return "synth_patterns"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_SYNTH_PATTERNS_HH
