/**
 * @file
 * rb_tree: transactional persistent red-black tree (PMDK example).
 *
 * Classic red-black insertion with recoloring/rotations, all node
 * mutations undo-logged inside one transaction per insert. Rotations
 * touch several nodes, producing the larger per-epoch store counts the
 * paper's characterization observes for rb_tree.
 *
 * Fault-injection points:
 *  - "rbtree_skip_log_rotation": rotation pointer updates not logged
 *    (lack durability in epoch).
 */

#ifndef PMDB_WORKLOADS_RBTREE_HH
#define PMDB_WORKLOADS_RBTREE_HH

#include <cstdint>
#include <optional>

#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Persistent red-black tree. */
class PersistentRbTree
{
  public:
    enum Color : std::uint32_t { Red = 0, Black = 1 };

    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        Addr parent;
        Addr left;
        Addr right;
        std::uint32_t color;
        std::uint32_t pad;
    };

    struct Meta
    {
        Addr root;
        std::uint64_t count;
    };

    PersistentRbTree(PmemPool &pool, const FaultSet &faults,
                     PmTestDetector *pmtest = nullptr);

    void insert(std::uint64_t key, std::uint64_t value);

    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    std::uint64_t count() const;

    /** Validate red-black invariants (tests); returns black height. */
    int validate() const;

  private:
    Node getNode(Addr addr) const { return pool_.load<Node>(addr); }
    void putNode(Transaction &tx, Addr addr, const Node &node,
                 bool log = true);
    void rotateLeft(Transaction &tx, Addr x_addr);
    void rotateRight(Transaction &tx, Addr x_addr);
    void fixInsert(Transaction &tx, Addr z_addr);
    void setRoot(Transaction &tx, Addr node);
    int validateNode(Addr addr, std::uint64_t lo, std::uint64_t hi) const;

    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    Addr meta_;
};

/** The rb_tree workload of Table 4. */
class RbTreeWorkload : public Workload
{
  public:
    const char *name() const override { return "rb_tree"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_RBTREE_HH
