/**
 * @file
 * Harness that runs bug-suite cases against the four detectors and
 * records who detected what — the machinery behind Table 6 and the
 * false-negative/false-positive rates of Section 7.3.
 */

#ifndef PMDB_WORKLOADS_SUITE_RUNNER_HH
#define PMDB_WORKLOADS_SUITE_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "workloads/bug_suite.hh"

namespace pmdb
{

/** Result of one case under one detector. */
struct CaseOutcome
{
    /** The expected bug type was reported. */
    bool detected = false;
    /** Any bug was reported on the correct variant (false positive). */
    bool falsePositive = false;
};

/** Per-detector aggregate over the suite. */
struct SuiteScore
{
    std::string detector;
    int detected = 0;
    int missed = 0;
    int falsePositives = 0;
    /** Bug types with at least one detected case. */
    int typesDetected = 0;

    double
    falseNegativeRate(int total_cases) const
    {
        return total_cases
                   ? 100.0 * static_cast<double>(missed) / total_cases
                   : 0.0;
    }
};

/**
 * Run one case under one detector.
 *
 * @param check_false_positive also run the correct variant and record
 *        whether the detector reports anything on it.
 */
CaseOutcome runCase(const BugCase &bug_case, const std::string &detector,
                    bool check_false_positive = false);

/** Detection matrix: matrix[detector][case id] = outcome. */
using SuiteMatrix =
    std::map<std::string, std::map<int, CaseOutcome>>;

/**
 * Run the full suite under the given detectors. With
 * @p check_false_positives the correct variant of every case also runs
 * (doubling the work).
 */
SuiteMatrix runSuite(const std::vector<std::string> &detectors,
                     bool check_false_positives = false);

/** Aggregate a matrix into per-detector scores. */
std::vector<SuiteScore> scoreSuite(const SuiteMatrix &matrix);

/**
 * Run the buggy variant of @p bug_case under PMDebugger and return the
 * identities of every reported bug as sorted fingerprint strings —
 * the values the case table's expectedFingerprints declare and
 * `pmdb_tracetool gen-fingerprints` regenerates.
 */
std::vector<std::string> caseFingerprints(const BugCase &bug_case);

} // namespace pmdb

#endif // PMDB_WORKLOADS_SUITE_RUNNER_HH
