/**
 * @file
 * c_tree: transactional persistent crit-bit tree (PMDK example).
 *
 * A binary trie keyed by the highest differing bit between keys, as in
 * PMDK's ctree example. Inserts allocate at most one leaf and one
 * internal node, giving short transactions with small undo logs — the
 * "distance = 1" pattern of Figure 2a.
 *
 * Fault-injection points:
 *  - "ctree_skip_log_parent": parent pointer update not logged/flushed
 *    (lack durability in epoch).
 */

#ifndef PMDB_WORKLOADS_CTREE_HH
#define PMDB_WORKLOADS_CTREE_HH

#include <cstdint>
#include <optional>

#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Persistent crit-bit tree. */
class PersistentCTree
{
  public:
    /** Leaf: a key/value pair. */
    struct Leaf
    {
        std::uint64_t key;
        std::uint64_t value;
    };

    /** Internal node: children ordered by the critical bit. */
    struct Node
    {
        /** Bit index (63..0) distinguishing the two subtrees. */
        std::uint32_t critBit;
        std::uint32_t pad;
        /** Tagged child pointers (bit 0 set = leaf). */
        Addr child[2];
    };

    struct Meta
    {
        /** Tagged root pointer (0 = empty tree). */
        Addr root;
        std::uint64_t count;
    };

    PersistentCTree(PmemPool &pool, const FaultSet &faults,
                    PmTestDetector *pmtest = nullptr);

    void insert(std::uint64_t key, std::uint64_t value);

    /** Remove @p key (crit-bit delete); returns true if present. */
    bool remove(std::uint64_t key);

    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    std::uint64_t count() const;

  private:
    static bool isLeaf(Addr tagged) { return (tagged & 1) != 0; }
    static Addr untag(Addr tagged) { return tagged & ~Addr(1); }
    static Addr tagLeaf(Addr addr) { return addr | 1; }

    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    Addr meta_;
};

/** The c_tree workload of Table 4. */
class CTreeWorkload : public Workload
{
  public:
    const char *name() const override { return "c_tree"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_CTREE_HH
