#include "workloads/redis.hh"

namespace pmdb
{

MiniRedis::MiniRedis(PmemPool &pool, const FaultSet &faults,
                     PmTestDetector *pmtest, std::uint64_t max_keys)
    : pool_(pool), faults_(faults), pmtest_(pmtest), maxKeys_(max_keys),
      sampleRng_(0xdeadbeefULL)
{
    meta_ = pool_.root(sizeof(Meta));
    pool_.registerVariable("redis.meta", meta_, sizeof(Meta));

    Meta meta = pool_.load<Meta>(meta_);
    if (meta.buckets == 0) {
        nBuckets_ = 4096;
        const Addr buckets = pool_.alloc(nBuckets_ * sizeof(Addr));
        Transaction tx(pool_);
        tx.begin();
        tx.addRange(meta_, sizeof(Meta));
        meta.buckets = buckets;
        meta.nBuckets = nBuckets_;
        meta.count = 0;
        pool_.store(meta_, meta);
        tx.commit();
    } else {
        nBuckets_ = meta.nBuckets;
    }
}

Addr
MiniRedis::bucketAddr(std::uint64_t bucket) const
{
    return pool_.load<Meta>(meta_).buckets + bucket * sizeof(Addr);
}

void
MiniRedis::set(std::uint64_t key, std::uint64_t value)
{
    if (pmtest_)
        pmtest_->pmTestStart();

    if (lruClock_.size() >= maxKeys_ && !lruClock_.count(key))
        evictSampled();

    const std::uint64_t bucket = mix64(key) % nBuckets_;
    const Addr slot = bucketAddr(bucket);

    Transaction tx(pool_);
    tx.begin();

    Addr cursor = pool_.load<Addr>(slot);
    bool updated = false;
    while (cursor) {
        Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key) {
            if (tx.addRange(cursor, sizeof(Entry)) && pmtest_)
                pmtest_->txChecker(cursor, sizeof(Entry));
            if (faults_.active("redis_double_log")) {
                if (tx.addRange(cursor + 8, 8) && pmtest_)
                    pmtest_->txChecker(cursor + 8, 8);
            }
            entry.value = value;
            pool_.store(cursor, entry);
            updated = true;
            break;
        }
        cursor = entry.next;
    }

    if (!updated) {
        const Addr fresh = tx.alloc(sizeof(Entry));
        Entry entry{key, value, pool_.load<Addr>(slot)};
        pool_.store(fresh, entry);
        if (faults_.active("redis_double_log")) {
            if (tx.addRange(fresh, 16) && pmtest_)
                pmtest_->txChecker(fresh, 16);
            if (tx.addRange(fresh + 8, 8) && pmtest_)
                pmtest_->txChecker(fresh + 8, 8);
        }

        if (!faults_.active("redis_skip_log_dict"))
            tx.addRange(slot, sizeof(Addr));
        pool_.store<Addr>(slot, fresh);

        tx.addRange(meta_, sizeof(Meta));
        Meta meta = pool_.load<Meta>(meta_);
        ++meta.count;
        pool_.store(meta_, meta);
    }

    if (faults_.active("redis_persist_in_tx")) {
        // Redundant fence inside the epoch (the Figure 9b pattern).
        pool_.persist(slot, sizeof(Addr));
    }

    tx.commit();

    if (!lruClock_.count(key)) {
        keyPos_[key] = keyList_.size();
        keyList_.push_back(key);
    }
    lruClock_[key] = ++tick_;

    if (pmtest_) {
        pmtest_->isPersist(slot, sizeof(Addr));
        pmtest_->pmTestEnd();
    }
}

std::optional<std::uint64_t>
MiniRedis::get(std::uint64_t key)
{
    const std::uint64_t bucket = mix64(key) % nBuckets_;
    Addr cursor = pool_.load<Addr>(bucketAddr(bucket));
    while (cursor) {
        const Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key) {
            lruClock_[key] = ++tick_;
            return entry.value;
        }
        cursor = entry.next;
    }
    return std::nullopt;
}

void
MiniRedis::evictSampled()
{
    // Redis approximated LRU: sample a handful of keys, evict the one
    // with the oldest clock.
    constexpr int samples = 5;
    std::uint64_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t(0);
    bool found = false;
    for (int i = 0; i < samples && !keyList_.empty(); ++i) {
        const std::uint64_t key =
            keyList_[sampleRng_.nextBounded(keyList_.size())];
        const auto it = lruClock_.find(key);
        if (it != lruClock_.end() && it->second < oldest) {
            oldest = it->second;
            victim = key;
            found = true;
        }
    }
    if (found)
        removeKey(victim);
}

void
MiniRedis::removeKey(std::uint64_t key)
{
    const std::uint64_t bucket = mix64(key) % nBuckets_;
    const Addr slot = bucketAddr(bucket);

    Transaction tx(pool_);
    tx.begin();

    Addr freed = 0;
    Addr prev = 0;
    Addr cursor = pool_.load<Addr>(slot);
    while (cursor) {
        Entry entry = pool_.load<Entry>(cursor);
        if (entry.key == key) {
            freed = cursor;
            if (prev) {
                tx.addRange(prev + offsetof(Entry, next), sizeof(Addr));
                pool_.store<Addr>(prev + offsetof(Entry, next),
                                  entry.next);
            } else {
                tx.addRange(slot, sizeof(Addr));
                pool_.store<Addr>(slot, entry.next);
            }
            tx.addRange(meta_, sizeof(Meta));
            Meta meta = pool_.load<Meta>(meta_);
            --meta.count;
            pool_.store(meta_, meta);
            break;
        }
        prev = cursor;
        cursor = entry.next;
    }

    tx.commit();
    // Return the entry to the allocator outside the epoch (its header
    // update persists with its own fence).
    if (freed)
        pool_.freeObj(freed);
    lruClock_.erase(key);
    const auto pos = keyPos_.find(key);
    if (pos != keyPos_.end()) {
        const std::size_t idx = pos->second;
        const std::uint64_t last = keyList_.back();
        keyList_[idx] = last;
        keyPos_[last] = idx;
        keyList_.pop_back();
        keyPos_.erase(pos);
    }
    ++evictions_;
}

std::uint64_t
MiniRedis::count() const
{
    return pool_.load<Meta>(meta_).count;
}

void
RedisWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(24 << 20,
                                           options.operations * 160);
    PmemPool pool(runtime, pool_bytes, "redis.pool",
                  options.trackPersistence);

    // The paper's redis-cli LRU test: keys cycle through a space larger
    // than the eviction budget, forcing steady-state evictions.
    const std::uint64_t budget =
        std::max<std::uint64_t>(256, options.operations / 8);
    MiniRedis redis(pool, options.faults, options.pmtest, budget);

    Rng rng(options.seed);
    const std::uint64_t key_space =
        std::max<std::uint64_t>(512, options.operations / 2);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        const std::uint64_t key = rng.nextBounded(key_space);
        if (rng.nextBool(0.5))
            redis.set(key, rng.next());
        else
            redis.get(key);
    }

    runtime.programEnd();
}

} // namespace pmdb
