/**
 * @file
 * redis: model of Intel's PM-aware Redis (Table 4's epoch-model real
 * workload).
 *
 * A persistent dict (chained hashing) updated through mini-PMDK
 * transactions, with redis-style approximated-LRU eviction: when the
 * key budget is exceeded, a small random sample is taken and the least
 * recently used sampled key is evicted (Redis's maxmemory-policy
 * allkeys-lru). The driver reproduces the paper's "LRU test": keys are
 * inserted and re-accessed until the configured number of keys has
 * been exercised.
 *
 * Fault-injection points:
 *  - "redis_skip_log_dict":  dict slot update not logged/flushed
 *                            (lack durability in epoch);
 *  - "redis_double_log":     entry logged twice (redundant logging);
 *  - "redis_persist_in_tx":  explicit persist inside the transaction
 *                            (redundant epoch fence).
 */

#ifndef PMDB_WORKLOADS_REDIS_HH
#define PMDB_WORKLOADS_REDIS_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/rng.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Miniature PM Redis: persistent dict + approximated LRU eviction. */
class MiniRedis
{
  public:
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t value;
        Addr next;
    };

    struct Meta
    {
        Addr buckets;
        std::uint64_t nBuckets;
        std::uint64_t count;
    };

    MiniRedis(PmemPool &pool, const FaultSet &faults,
              PmTestDetector *pmtest = nullptr,
              std::uint64_t max_keys = 1 << 16);

    /** SET key value (transactional; may trigger an eviction). */
    void set(std::uint64_t key, std::uint64_t value);

    /** GET key (volatile read; refreshes the LRU clock). */
    std::optional<std::uint64_t> get(std::uint64_t key);

    std::uint64_t count() const;
    std::uint64_t evictions() const { return evictions_; }

  private:
    Addr bucketAddr(std::uint64_t bucket) const;
    void evictSampled();
    void removeKey(std::uint64_t key);

    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    Addr meta_;
    std::uint64_t nBuckets_;
    std::uint64_t maxKeys_;
    /** Volatile LRU clock per key (Redis keeps this in the robj). */
    std::unordered_map<std::uint64_t, std::uint64_t> lruClock_;
    /** Key list for O(1) random sampling (index mirrored in lruPos_). */
    std::vector<std::uint64_t> keyList_;
    std::unordered_map<std::uint64_t, std::size_t> keyPos_;
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
    Rng sampleRng_;
};

/** The redis workload of Table 4 (LRU-test driver). */
class RedisWorkload : public Workload
{
  public:
    const char *name() const override { return "redis"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_REDIS_HH
