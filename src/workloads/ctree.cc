#include "workloads/ctree.hh"

#include <bit>

#include "common/rng.hh"

namespace pmdb
{

PersistentCTree::PersistentCTree(PmemPool &pool, const FaultSet &faults,
                                 PmTestDetector *pmtest)
    : pool_(pool), faults_(faults), pmtest_(pmtest)
{
    meta_ = pool_.root(sizeof(Meta));
    pool_.registerVariable("ctree.meta", meta_, sizeof(Meta));
}

void
PersistentCTree::insert(std::uint64_t key, std::uint64_t value)
{
    if (pmtest_)
        pmtest_->pmTestStart();

    Transaction tx(pool_);
    tx.begin();

    Meta meta = pool_.load<Meta>(meta_);
    if (meta.root == 0) {
        const Addr leaf = tx.alloc(sizeof(Leaf));
        pool_.store(leaf, Leaf{key, value});
        tx.addRange(meta_, sizeof(Meta));
        meta.root = tagLeaf(leaf);
        meta.count = 1;
        pool_.store(meta_, meta);
        tx.commit();
        if (pmtest_) {
            pmtest_->isPersist(meta_, sizeof(Meta));
            pmtest_->pmTestEnd();
        }
        return;
    }

    // Descend to the closest leaf.
    Addr tagged = meta.root;
    while (!isLeaf(tagged)) {
        const Node node = pool_.load<Node>(untag(tagged));
        tagged = node.child[(key >> node.critBit) & 1];
    }
    const Addr leaf_addr = untag(tagged);
    Leaf leaf = pool_.load<Leaf>(leaf_addr);

    if (leaf.key == key) {
        // Update in place.
        tx.addRange(leaf_addr, sizeof(Leaf));
        leaf.value = value;
        pool_.store(leaf_addr, leaf);
        tx.commit();
        if (pmtest_) {
            pmtest_->isPersist(leaf_addr, sizeof(Leaf));
            pmtest_->pmTestEnd();
        }
        return;
    }

    // Find the critical bit distinguishing the new key.
    const std::uint64_t diff = leaf.key ^ key;
    const std::uint32_t crit =
        63u - static_cast<std::uint32_t>(std::countl_zero(diff));

    const Addr new_leaf = tx.alloc(sizeof(Leaf));
    pool_.store(new_leaf, Leaf{key, value});
    const Addr new_node = tx.alloc(sizeof(Node));

    Addr parent = 0; // 0 = the root slot in meta
    int parent_dir = 0;
    Addr cursor = meta.root;
    while (!isLeaf(cursor)) {
        const Node node = pool_.load<Node>(untag(cursor));
        if (node.critBit < crit)
            break;
        parent = untag(cursor);
        parent_dir = static_cast<int>((key >> node.critBit) & 1);
        cursor = node.child[parent_dir];
    }

    Node fresh;
    fresh.critBit = crit;
    fresh.pad = 0;
    const int dir = static_cast<int>((key >> crit) & 1);
    fresh.child[dir] = tagLeaf(new_leaf);
    fresh.child[1 - dir] = cursor;
    pool_.store(new_node, fresh);

    if (parent == 0) {
        tx.addRange(meta_, sizeof(Meta));
        meta.root = new_node;
        ++meta.count;
        pool_.store(meta_, meta);
    } else {
        if (!faults_.active("ctree_skip_log_parent"))
            tx.addRange(parent, sizeof(Node));
        Node pnode = pool_.load<Node>(parent);
        pnode.child[parent_dir] = new_node;
        pool_.store(parent, pnode);

        tx.addRange(meta_, sizeof(Meta));
        ++meta.count;
        pool_.store(meta_, meta);
    }

    tx.commit();
    if (pmtest_) {
        pmtest_->isPersist(new_leaf, sizeof(Leaf));
        pmtest_->pmTestEnd();
    }
}

bool
PersistentCTree::remove(std::uint64_t key)
{
    Meta meta = pool_.load<Meta>(meta_);
    if (meta.root == 0)
        return false;

    // Walk to the leaf, remembering the parent edge and the
    // grandparent edge above it.
    Addr grand = 0;      // node owning the edge to parent (0 = meta)
    int grand_dir = 0;
    Addr parent = 0;     // node owning the edge to the leaf (0 = meta)
    int parent_dir = 0;
    Addr cursor = meta.root;
    while (!isLeaf(cursor)) {
        const Node node = pool_.load<Node>(untag(cursor));
        grand = parent;
        grand_dir = parent_dir;
        parent = untag(cursor);
        parent_dir = static_cast<int>((key >> node.critBit) & 1);
        cursor = node.child[parent_dir];
    }
    const Addr leaf_addr = untag(cursor);
    if (pool_.load<Leaf>(leaf_addr).key != key)
        return false;

    Transaction tx(pool_);
    tx.begin();
    if (parent == 0) {
        // The root was the leaf itself.
        tx.addRange(meta_, sizeof(Meta));
        meta.root = 0;
        --meta.count;
        pool_.store(meta_, meta);
    } else {
        // Splice the leaf's sibling into the grandparent's edge,
        // retiring the parent node (standard crit-bit delete).
        const Node pnode = pool_.load<Node>(parent);
        const Addr sibling = pnode.child[1 - parent_dir];
        if (grand == 0) {
            tx.addRange(meta_, sizeof(Meta));
            meta.root = sibling;
            --meta.count;
            pool_.store(meta_, meta);
        } else {
            const Addr edge =
                grand + offsetof(Node, child) +
                static_cast<Addr>(grand_dir) * sizeof(Addr);
            tx.addRange(edge, sizeof(Addr));
            pool_.store<Addr>(edge, sibling);
            tx.addRange(meta_, sizeof(Meta));
            --meta.count;
            pool_.store(meta_, meta);
        }
    }
    tx.commit();
    if (parent != 0)
        pool_.freeObj(parent);
    pool_.freeObj(leaf_addr);
    return true;
}

std::optional<std::uint64_t>
PersistentCTree::lookup(std::uint64_t key) const
{
    Meta meta = pool_.load<Meta>(meta_);
    Addr tagged = meta.root;
    if (tagged == 0)
        return std::nullopt;
    while (!isLeaf(tagged)) {
        const Node node = pool_.load<Node>(untag(tagged));
        tagged = node.child[(key >> node.critBit) & 1];
    }
    const Leaf leaf = pool_.load<Leaf>(untag(tagged));
    if (leaf.key == key)
        return leaf.value;
    return std::nullopt;
}

std::uint64_t
PersistentCTree::count() const
{
    return pool_.load<Meta>(meta_).count;
}

void
CTreeWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(16 << 20,
                                           options.operations * 512);
    PmemPool pool(runtime, pool_bytes, "c_tree.pool",
                  options.trackPersistence);
    PersistentCTree tree(pool, options.faults, options.pmtest);

    Rng rng(options.seed);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        tree.insert(rng.next(), i);
    }

    runtime.programEnd();
}

} // namespace pmdb
