/**
 * @file
 * shared_queue: two-writer producer/consumer over a SharedPmemPool.
 *
 * The crossproc workload family. One pool file is mapped by two writer
 * processes (or two runtimes in-process for the identity tests):
 * writer 1 *produces* fixed-size entries and publishes them through a
 * persistent tail cursor; writer 2 *consumes* them and advances a
 * persistent head cursor. Layout (offsets into the pool's data
 * region, one cache line each):
 *
 *   head    @ 0     consumer's persistent cursor
 *   tail    @ 64    producer's publication cursor
 *   entry i @ 128 + i*64
 *
 * The two roles run in lock-step via the pool's uninstrumented
 * coordination word 0 (a turn counter), so the interleaving of the
 * two event streams — and therefore every report derived from the
 * merged stream — is identical from run to run and across shard
 * counts.
 *
 * Fault-injection points (each seeds exactly one cross-session rule,
 * and each is deliberately *invisible* to a per-session detector: the
 * producer repairs its own flush/fence discipline before its stream
 * ends, so only the merged two-writer view exposes the bug):
 *
 *  - "sq_skip_entry_persist":   the producer publishes the tail
 *    without having flushed the entry; the consumer reads the dirty
 *    entry (unflushed-cross-writer-read). The producer persists the
 *    entries at end-of-run, so its own session sees every store
 *    eventually durable.
 *  - "sq_publish_pending_entry": the producer flushes the entry only
 *    *after* the fence that persisted the tail, so the consumer reads
 *    a pending (flushed, unfenced) entry and then persists its head —
 *    durability order inverts (publish-before-persist). A single
 *    end-of-run fence makes the producer's own stream clean.
 *  - "sq_epoch_overlap":        the consumer stores a claim word into
 *    the entry line while the producer's epoch covering that line is
 *    still open (cross-writer-epoch-overlap). Both epochs are
 *    balanced and all stores persist, so each session alone is quiet.
 */

#ifndef PMDB_WORKLOADS_SHARED_QUEUE_HH
#define PMDB_WORKLOADS_SHARED_QUEUE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace pmdb
{

/** The shared_queue crossproc workload. */
class SharedQueueWorkload : public Workload
{
  public:
    /** Writer ids of the two roles. */
    static constexpr std::uint32_t producerWriter = 1;
    static constexpr std::uint32_t consumerWriter = 2;

    /** Pool data bytes needed for @p operations entries. */
    static std::size_t poolBytesFor(std::size_t operations);

    const char *name() const override { return "shared_queue"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    /**
     * Runs the role selected by options.sharedWriter (1 = producer,
     * 2 = consumer) against the pool at options.sharedPoolPath, which
     * must already exist (the driver creates it). Both roles must run
     * concurrently — each blocks on the shared turn counter.
     */
    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

/**
 * A seeded two-writer bug case: enabling @p faults on *both* writers
 * of a shared_queue run makes the cross-session engine report
 * bugs whose CrossBug rule name is @p rule — while the same two
 * event streams, checked as independent per-session runs, stay
 * silent.
 */
struct CrossprocCase
{
    std::string name;
    /** Fault to enable (on both writers). */
    std::string fault;
    /** Expected CrossBugType name (toString(CrossBugType)). */
    std::string rule;
};

/** The seeded shared_queue bug variants. */
const std::vector<CrossprocCase> &crossprocCases();

} // namespace pmdb

#endif // PMDB_WORKLOADS_SHARED_QUEUE_HH
