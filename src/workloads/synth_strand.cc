#include "workloads/synth_strand.hh"

#include "common/rng.hh"

namespace pmdb
{

namespace
{

/**
 * A strand-local node store mimicking the write pattern of a tree
 * insert: write a node (several stores to one line), flush it, persist
 * barrier; occasionally also update a parent slot first.
 */
class StrandTree
{
  public:
    StrandTree(PmemPool &pool, Addr region, std::size_t capacity,
               PmTestDetector *pmtest)
        : pool_(pool), region_(region), capacity_(capacity),
          pmtest_(pmtest)
    {
    }

    void
    insert(std::uint64_t key, std::uint64_t value, bool barrier)
    {
        if (pmtest_)
            pmtest_->pmTestStart();
        const Addr node =
            region_ + (next_ % capacity_) * nodeBytes;
        ++next_;
        pool_.store<std::uint64_t>(node, key);
        pool_.store<std::uint64_t>(node + 8, value);
        pool_.store<std::uint64_t>(node + 16, next_);
        pool_.flush(node, 24);
        if (barrier)
            pool_.fence(); // persist barrier within the strand

        // Every few inserts, update the "parent" slot of the previous
        // node, ordered behind the node by another barrier.
        if (next_ % 4 == 0 && next_ >= 2) {
            const Addr parent =
                region_ + ((next_ - 2) % capacity_) * nodeBytes + 24;
            pool_.store<std::uint64_t>(parent, next_);
            if (barrier) {
                pool_.flush(parent, 8);
                pool_.fence();
            }
            // With the barrier omitted the parent slot is never even
            // flushed: a durability bug that survives JoinStrand.
            if (pmtest_)
                pmtest_->isPersist(parent, 8);
        }
        if (pmtest_) {
            pmtest_->isPersist(node, 24);
            pmtest_->pmTestEnd();
        }
    }

  private:
    static constexpr std::size_t nodeBytes = 64;

    PmemPool &pool_;
    Addr region_;
    std::size_t capacity_;
    PmTestDetector *pmtest_;
    std::size_t next_ = 0;
};

} // namespace

void
SynthStrandWorkload::run(PmRuntime &runtime,
                         const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(16 << 20,
                                           options.operations * 192);
    PmemPool pool(runtime, pool_bytes, "synth_strand.pool",
                  options.trackPersistence);

    // Two independent regions, one per strand, plus the shared
    // ordering-contract variables A and B.
    const std::size_t per_strand =
        std::max<std::size_t>(1024, options.operations);
    const Addr region0 = pool.alloc(per_strand * 64);
    const Addr region1 = pool.alloc(per_strand * 64);
    const Addr shared = pool.alloc(128);
    pool.registerVariable("synth_strand.A", shared, 8);
    pool.registerVariable("synth_strand.B", shared + 64, 8);

    StrandTree tree0(pool, region0, per_strand, options.pmtest);
    StrandTree tree1(pool, region1, per_strand, options.pmtest);

    const bool missing_barrier =
        options.faults.active("strand_missing_barrier");
    const bool cross_persist =
        options.faults.active("strand_cross_persist");

    Rng rng(options.seed);
    constexpr std::size_t batch = 64;
    std::size_t done = 0;
    while (done < options.operations) {
        const std::size_t n =
            std::min(batch, options.operations - done);

        // Strand 0: b_tree-like inserts; also writes A then B with the
        // required A-before-B persist order.
        runtime.strandBegin(0);
        for (std::size_t i = 0; i < n; ++i) {
            runtime.appOp();
            tree0.insert(rng.next(), done + i, !missing_barrier);
        }
        pool.store<std::uint64_t>(shared, done);          // A
        pool.flush(shared, 8);
        pool.fence();
        pool.store<std::uint64_t>(shared + 64, done);     // B
        pool.flush(shared + 64, 8);
        pool.fence();
        runtime.strandEnd(0);

        // Strand 1: c_tree-like inserts; the injected bug persists B
        // from this strand while strand 0's A of the next batch is
        // still in flight (Figure 7b).
        runtime.strandBegin(1);
        for (std::size_t i = 0; i < n; ++i) {
            runtime.appOp();
            tree1.insert(rng.next(), done + i, !missing_barrier);
        }
        if (cross_persist) {
            pool.store<std::uint64_t>(shared, done + 1);  // strand-0 duty
            pool.store<std::uint64_t>(shared + 64, done + 1); // B again
            pool.flush(shared + 64, 8); // persists B while A is dirty
            pool.fence();
            pool.flush(shared, 8);
            pool.fence();
        }
        runtime.strandEnd(1);

        runtime.joinStrand();
        done += n;
    }

    runtime.programEnd();
}

} // namespace pmdb
