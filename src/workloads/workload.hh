/**
 * @file
 * Workload interface and registry.
 *
 * The evaluation workloads of Table 4, reimplemented on the mini-PMDK /
 * instrumentation substrate: six PMDK example programs (b_tree, c_tree,
 * r_tree, rb_tree, hashmap_tx, hashmap_atomic), the synthetic strand
 * benchmark, and two real-workload models (memcached, redis). Each
 * workload issues every persistent-memory operation through the
 * PmRuntime instrumentation layer, so attached detectors observe the
 * complete store/CLF/fence stream.
 */

#ifndef PMDB_WORKLOADS_WORKLOAD_HH
#define PMDB_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/config.hh"
#include "detectors/pmtest.hh"
#include "trace/runtime.hh"

namespace pmdb
{

class CrashsimSession;

/**
 * Named fault-injection switches. Workloads expose injection points
 * (e.g. "skip_value_flush"); the bug suite enables them to reproduce
 * specific bug cases. An empty set runs the correct program.
 */
class FaultSet
{
  public:
    FaultSet() = default;

    FaultSet(std::initializer_list<std::string> faults)
        : faults_(faults)
    {
    }

    void enable(const std::string &fault) { faults_.insert(fault); }

    bool active(const std::string &fault) const
    {
        return faults_.count(fault) != 0;
    }

    bool empty() const { return faults_.empty(); }

  private:
    std::set<std::string> faults_;
};

/** Options shared by all workloads. */
struct WorkloadOptions
{
    /** Number of operations (insertions / requests) to perform. */
    std::size_t operations = 1000;

    /** Deterministic seed for keys/values. */
    std::uint64_t seed = 42;

    /** Active fault injections (empty = correct program). */
    FaultSet faults;

    /**
     * PMTest annotation hooks: when non-null, workloads bracket their
     * operations with PMTest_START/END and issue the checkers the
     * PMTest developers added to these benchmarks (Section 7.3).
     */
    PmTestDetector *pmtest = nullptr;

    /** Pool size in bytes (0 = workload picks a default). */
    std::size_t poolBytes = 0;

    /** memcached: number of driver threads (Figure 10). */
    int threads = 1;

    /** memcached: fraction of set operations (memslap default 5%). */
    double setRatio = 0.05;

    /** memcached/redis: item capacity before eviction (0 = default). */
    std::size_t cacheCapacity = 0;

    /**
     * Attach the simulated device's persistence-domain tracking.
     * Performance benchmarks disable it (real PM hardware does this
     * for free); correctness and crash tests keep it on.
     */
    bool trackPersistence = true;

    /**
     * When non-null, the workload adopts this crash-state exploration
     * session onto its pool's device (with a workload-specific recovery
     * verifier) before issuing operations. Supported by the workloads
     * that ship a self-contained recovery verifier (b_tree,
     * hashmap_atomic); others ignore it.
     */
    CrashsimSession *crashsim = nullptr;

    /**
     * Multi-writer shared pool file (crossproc workload family). When
     * set, the workload maps this SharedPmemPool instead of creating a
     * private PmemPool, and runs the role selected by sharedWriter.
     * Only shared-pool workloads (shared_queue) honor these.
     */
    std::string sharedPoolPath;
    /** Role in the shared pool: 1 = producer, 2 = consumer. */
    std::uint32_t sharedWriter = 0;
};

/** A runnable evaluation workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** The persistency model the workload follows (Table 4). */
    virtual PersistencyModel model() const = 0;

    /** Run the workload against @p runtime. */
    virtual void run(PmRuntime &runtime,
                     const WorkloadOptions &options) = 0;

    /**
     * Order-spec text this workload ships for its watched variables
     * (empty if none). Passed to detectors that take ordering config.
     */
    virtual std::string orderSpecText() const { return {}; }
};

/** Names of all registered workloads. */
std::vector<std::string> workloadNames();

/** Build a workload by name; nullptr for unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** The seven micro-benchmarks of Table 4 (Fig 8 a-g order). */
std::vector<std::string> microBenchmarkNames();

} // namespace pmdb

#endif // PMDB_WORKLOADS_WORKLOAD_HH
