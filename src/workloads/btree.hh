/**
 * @file
 * b_tree: transactional persistent B-tree (PMDK example workload).
 *
 * An order-8 B-tree whose inserts run inside mini-PMDK transactions
 * (epoch persistency): every modified node is undo-logged with
 * addRange and flushed at the commit barrier, matching the PM program
 * pattern of PMDK's btree example.
 *
 * Fault-injection points (bug suite):
 *  - "btree_skip_log_meta":   do not log/flush the tree metadata update
 *                             (lack durability in epoch);
 *  - "btree_persist_in_tx":   call pmemobj-persist inside the epoch
 *                             (redundant epoch fence);
 *  - "btree_double_log":      log the target leaf twice
 *                             (redundant logging).
 */

#ifndef PMDB_WORKLOADS_BTREE_HH
#define PMDB_WORKLOADS_BTREE_HH

#include <cstdint>
#include <optional>

#include "core/cross_failure.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Persistent transactional B-tree. */
class PersistentBTree
{
  public:
    /** Maximum keys per node (order 8 B-tree). */
    static constexpr int maxKeys = 7;

    /** On-media node layout. */
    struct Node
    {
        std::uint32_t nKeys;
        std::uint32_t isLeaf;
        std::uint64_t keys[maxKeys];
        std::uint64_t values[maxKeys];
        Addr children[maxKeys + 1];
    };

    /** On-media root metadata (the pool's root object). */
    struct Meta
    {
        Addr rootNode;
        std::uint64_t count;
    };

    PersistentBTree(PmemPool &pool, const FaultSet &faults,
                    PmTestDetector *pmtest = nullptr);

    /** Insert (or update) @p key inside one transaction. */
    void insert(std::uint64_t key, std::uint64_t value);

    /** Look up @p key (reads are not instrumented). */
    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    std::uint64_t count() const;

    /** Address of the root metadata object. */
    Addr metaAddr() const { return meta_; }

  private:
    Addr allocNode(Transaction &tx, bool leaf);
    void insertNonFull(Transaction &tx, Addr node_addr, std::uint64_t key,
                       std::uint64_t value);
    void splitChild(Transaction &tx, Addr parent_addr, int index);

    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    Addr meta_;
};

/** The b_tree workload of Table 4. */
class BTreeWorkload : public Workload
{
  public:
    const char *name() const override { return "b_tree"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;
};

/**
 * Self-contained recovery verifier for crash-state exploration: runs
 * undo-log recovery over the crash image (TxRecovery::rollbackImage),
 * then walks the recovered tree checking structural invariants (node
 * bounds, key order, fanout) and that the number of reachable keys
 * matches the durable metadata count. Captures everything by value, so
 * it stays valid after the pool is destroyed.
 */
CrossFailureChecker::Verifier
btreeRecoveryVerifier(Addr meta_addr, TxRecovery::TxLogRegion log_region);

} // namespace pmdb

#endif // PMDB_WORKLOADS_BTREE_HH
