#include "workloads/rbtree.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace pmdb
{

PersistentRbTree::PersistentRbTree(PmemPool &pool, const FaultSet &faults,
                                   PmTestDetector *pmtest)
    : pool_(pool), faults_(faults), pmtest_(pmtest)
{
    meta_ = pool_.root(sizeof(Meta));
    pool_.registerVariable("rbtree.meta", meta_, sizeof(Meta));
}

void
PersistentRbTree::putNode(Transaction &tx, Addr addr, const Node &node,
                          bool log)
{
    if (log)
        tx.addRange(addr, sizeof(Node));
    pool_.store(addr, node);
}

void
PersistentRbTree::setRoot(Transaction &tx, Addr node)
{
    tx.addRange(meta_, sizeof(Meta));
    Meta meta = pool_.load<Meta>(meta_);
    meta.root = node;
    pool_.store(meta_, meta);
}

void
PersistentRbTree::rotateLeft(Transaction &tx, Addr x_addr)
{
    const bool log = !faults_.active("rbtree_skip_log_rotation");
    Node x = getNode(x_addr);
    const Addr y_addr = x.right;
    Node y = getNode(y_addr);

    x.right = y.left;
    if (y.left) {
        Node yl = getNode(y.left);
        yl.parent = x_addr;
        putNode(tx, y.left, yl, log);
    }
    y.parent = x.parent;
    if (!x.parent) {
        setRoot(tx, y_addr);
    } else {
        Node p = getNode(x.parent);
        if (p.left == x_addr)
            p.left = y_addr;
        else
            p.right = y_addr;
        putNode(tx, x.parent, p, log);
    }
    y.left = x_addr;
    x.parent = y_addr;
    putNode(tx, x_addr, x, log);
    putNode(tx, y_addr, y, log);
}

void
PersistentRbTree::rotateRight(Transaction &tx, Addr x_addr)
{
    const bool log = !faults_.active("rbtree_skip_log_rotation");
    Node x = getNode(x_addr);
    const Addr y_addr = x.left;
    Node y = getNode(y_addr);

    x.left = y.right;
    if (y.right) {
        Node yr = getNode(y.right);
        yr.parent = x_addr;
        putNode(tx, y.right, yr, log);
    }
    y.parent = x.parent;
    if (!x.parent) {
        setRoot(tx, y_addr);
    } else {
        Node p = getNode(x.parent);
        if (p.left == x_addr)
            p.left = y_addr;
        else
            p.right = y_addr;
        putNode(tx, x.parent, p, log);
    }
    y.right = x_addr;
    x.parent = y_addr;
    putNode(tx, x_addr, x, log);
    putNode(tx, y_addr, y, log);
}

void
PersistentRbTree::fixInsert(Transaction &tx, Addr z_addr)
{
    Node z = getNode(z_addr);
    while (z.parent) {
        Node parent = getNode(z.parent);
        if (parent.color != Red)
            break;
        const Addr grand_addr = parent.parent;
        Node grand = getNode(grand_addr);
        if (z.parent == grand.left) {
            const Addr uncle_addr = grand.right;
            Node uncle{};
            const bool uncle_red =
                uncle_addr && (uncle = getNode(uncle_addr)).color == Red;
            if (uncle_red) {
                parent.color = Black;
                uncle.color = Black;
                grand.color = Red;
                putNode(tx, z.parent, parent);
                putNode(tx, uncle_addr, uncle);
                putNode(tx, grand_addr, grand);
                z_addr = grand_addr;
                z = getNode(z_addr);
            } else {
                if (z_addr == parent.right) {
                    z_addr = z.parent;
                    rotateLeft(tx, z_addr);
                    z = getNode(z_addr);
                }
                Node p2 = getNode(z.parent);
                p2.color = Black;
                putNode(tx, z.parent, p2);
                Node g2 = getNode(p2.parent);
                g2.color = Red;
                putNode(tx, p2.parent, g2);
                rotateRight(tx, p2.parent);
                z = getNode(z_addr);
            }
        } else {
            const Addr uncle_addr = grand.left;
            Node uncle{};
            const bool uncle_red =
                uncle_addr && (uncle = getNode(uncle_addr)).color == Red;
            if (uncle_red) {
                parent.color = Black;
                uncle.color = Black;
                grand.color = Red;
                putNode(tx, z.parent, parent);
                putNode(tx, uncle_addr, uncle);
                putNode(tx, grand_addr, grand);
                z_addr = grand_addr;
                z = getNode(z_addr);
            } else {
                if (z_addr == parent.left) {
                    z_addr = z.parent;
                    rotateRight(tx, z_addr);
                    z = getNode(z_addr);
                }
                Node p2 = getNode(z.parent);
                p2.color = Black;
                putNode(tx, z.parent, p2);
                Node g2 = getNode(p2.parent);
                g2.color = Red;
                putNode(tx, p2.parent, g2);
                rotateLeft(tx, p2.parent);
                z = getNode(z_addr);
            }
        }
    }

    Meta meta = pool_.load<Meta>(meta_);
    Node root = getNode(meta.root);
    if (root.color != Black) {
        root.color = Black;
        putNode(tx, meta.root, root);
    }
}

void
PersistentRbTree::insert(std::uint64_t key, std::uint64_t value)
{
    if (pmtest_)
        pmtest_->pmTestStart();

    Transaction tx(pool_);
    tx.begin();

    Meta meta = pool_.load<Meta>(meta_);

    // Standard BST descent.
    Addr parent = 0;
    Addr cursor = meta.root;
    bool went_left = false;
    while (cursor) {
        Node node = getNode(cursor);
        if (node.key == key) {
            tx.addRange(cursor, sizeof(Node));
            node.value = value;
            pool_.store(cursor, node);
            tx.commit();
            if (pmtest_)
                pmtest_->pmTestEnd();
            return;
        }
        parent = cursor;
        went_left = key < node.key;
        cursor = went_left ? node.left : node.right;
    }

    const Addr fresh = tx.alloc(sizeof(Node));
    Node node{};
    node.key = key;
    node.value = value;
    node.parent = parent;
    node.color = Red;
    pool_.store(fresh, node);

    if (!parent) {
        setRoot(tx, fresh);
    } else {
        Node p = getNode(parent);
        if (went_left)
            p.left = fresh;
        else
            p.right = fresh;
        putNode(tx, parent, p);
    }

    fixInsert(tx, fresh);

    tx.addRange(meta_, sizeof(Meta));
    meta = pool_.load<Meta>(meta_);
    ++meta.count;
    pool_.store(meta_, meta);

    tx.commit();
    if (pmtest_) {
        pmtest_->isPersist(fresh, sizeof(Node));
        pmtest_->pmTestEnd();
    }
}

std::optional<std::uint64_t>
PersistentRbTree::lookup(std::uint64_t key) const
{
    Addr cursor = pool_.load<Meta>(meta_).root;
    while (cursor) {
        const Node node = getNode(cursor);
        if (node.key == key)
            return node.value;
        cursor = key < node.key ? node.left : node.right;
    }
    return std::nullopt;
}

std::uint64_t
PersistentRbTree::count() const
{
    return pool_.load<Meta>(meta_).count;
}

int
PersistentRbTree::validateNode(Addr addr, std::uint64_t lo,
                               std::uint64_t hi) const
{
    if (!addr)
        return 1;
    const Node node = getNode(addr);
    if (node.key < lo || node.key > hi)
        panic("rbtree: BST order violated");
    if (node.color == Red) {
        if (node.left && getNode(node.left).color == Red)
            panic("rbtree: red node with red left child");
        if (node.right && getNode(node.right).color == Red)
            panic("rbtree: red node with red right child");
    }
    const std::uint64_t key = node.key;
    const int lh = validateNode(node.left, lo, key ? key - 1 : 0);
    const int rh = validateNode(node.right, key + 1, hi);
    if (lh != rh)
        panic("rbtree: black height mismatch");
    return lh + (node.color == Black ? 1 : 0);
}

int
PersistentRbTree::validate() const
{
    const Meta meta = pool_.load<Meta>(meta_);
    if (!meta.root)
        return 0;
    if (getNode(meta.root).color != Black)
        panic("rbtree: root is not black");
    return validateNode(meta.root, 0, ~std::uint64_t(0));
}

void
RbTreeWorkload::run(PmRuntime &runtime, const WorkloadOptions &options)
{
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0)
        pool_bytes = std::max<std::size_t>(16 << 20,
                                           options.operations * 512);
    PmemPool pool(runtime, pool_bytes, "rb_tree.pool",
                  options.trackPersistence);
    PersistentRbTree tree(pool, options.faults, options.pmtest);

    Rng rng(options.seed);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        tree.insert(rng.next(), i);
    }

    runtime.programEnd();
}

} // namespace pmdb
