#include "workloads/synth_patterns.hh"

#include "common/logging.hh"

namespace pmdb
{

PatternGenerator::PatternGenerator(PmemPool &pool, PatternParams params,
                                   std::uint64_t seed,
                                   std::size_t region_slots)
    : pool_(pool), params_(params), rng_(seed), slots_(region_slots)
{
    if (params_.storesPerOp < 1 || params_.storesPerOp > 8)
        fatal("PatternGenerator: storesPerOp must be in [1, 8]");
    if (slots_ < 64)
        fatal("PatternGenerator: need at least 64 region slots");
    region_ = pool_.alloc(slots_ * slotBytes());
}

int
PatternGenerator::sampleDistance()
{
    double total = 0.0;
    for (double w : params_.distanceWeights)
        total += w;
    double draw = rng_.nextDouble() * total;
    for (int d = 0; d < 6; ++d) {
        draw -= params_.distanceWeights[d];
        if (draw <= 0.0)
            return d + 1; // bucket 6 means "> 5": realised as 7
    }
    return 6;
}

void
PatternGenerator::operation()
{
    const Addr slot = region_ + (next_ % slots_) * slotBytes();
    ++next_;

    const bool collective = rng_.nextBool(params_.collectiveRatio);
    int distance = sampleDistance();
    if (distance == 6)
        distance = 7; // the "> 5" bucket

    // Issue the operation's stores: all in one line (collective) or
    // one per line (dispersed).
    std::vector<AddrRange> lines;
    for (int i = 0; i < params_.storesPerOp; ++i) {
        const Addr addr = collective
                              ? slot + static_cast<Addr>(i) * 8
                              : slot + static_cast<Addr>(i) * 64;
        pool_.store<std::uint64_t>(addr, next_ * 8 + i);
        const Addr line = cacheLineBase(addr);
        if (lines.empty() || lines.back().start != line)
            lines.push_back(AddrRange(line, line + cacheLineSize));
    }

    // Deferred CLFs whose delay has elapsed are issued before this
    // operation's fence, making their durability distance exact.
    std::size_t kept = 0;
    for (Deferred &entry : deferred_) {
        if (--entry.fencesLeft <= 0) {
            pool_.flush(entry.addr, entry.size);
        } else {
            deferred_[kept++] = entry;
        }
    }
    deferred_.resize(kept);

    if (distance == 1) {
        for (const AddrRange &line : lines)
            pool_.flush(line.start, cacheLineSize);
    } else {
        for (const AddrRange &line : lines) {
            deferred_.push_back(
                {line.start, static_cast<std::uint32_t>(cacheLineSize),
                 distance - 1});
        }
    }

    pool_.fence();
}

void
PatternGenerator::drain()
{
    for (const Deferred &entry : deferred_)
        pool_.flush(entry.addr, entry.size);
    deferred_.clear();
    pool_.fence();
}

std::size_t
PatternGenerator::slotBytes() const
{
    return static_cast<std::size_t>(params_.storesPerOp) * 64;
}

void
SynthPatternsWorkload::run(PmRuntime &runtime,
                           const WorkloadOptions &options)
{
    PatternParams params; // Figure 2-like defaults
    const std::size_t slots =
        std::min<std::size_t>(8192, std::max<std::size_t>(
                                        64, options.operations));
    std::size_t pool_bytes = options.poolBytes;
    if (pool_bytes == 0) {
        pool_bytes = std::max<std::size_t>(
            8 << 20, slots * params.storesPerOp * 64 * 2);
    }
    PmemPool pool(runtime, pool_bytes, "synth_patterns.pool",
                  options.trackPersistence);
    PatternGenerator generator(pool, params, options.seed, slots);
    for (std::size_t i = 0; i < options.operations; ++i) {
        runtime.appOp();
        generator.operation();
    }
    generator.drain();
    runtime.programEnd();
}

} // namespace pmdb
