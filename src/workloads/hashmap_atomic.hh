/**
 * @file
 * hashmap_atomic: atomic (non-transactional) persistent hashmap
 * (PMDK example).
 *
 * Inserts avoid transactions: the entry is allocated, its fields are
 * written and persisted with a single cache-line writeback, and only
 * then is the bucket head atomically redirected and persisted. All
 * stores of an entry share one cache line, so nearly every CLF
 * interval is a *collective writeback* — the paper notes
 * hashmap_atomic has the highest collective ratio (Figure 2b) and
 * consequently PMDebugger's best speedup (up to 7.5x, Section 7.2).
 *
 * The create path reproduces the real PMDK bug of Figure 9b when
 * enabled: data_store.c wraps map creation in a transaction while
 * create_hashmap calls pmemobj_persist inside it, inserting a
 * redundant fence into the epoch (confirmed by Intel, PMDK PR #4939).
 *
 * Fault-injection points:
 *  - "pmdk_create_bug":        the Figure 9b redundant epoch fence;
 *  - "hmatomic_skip_entry_flush": entry persisted only by the bucket
 *                              CLF that misses it (no durability);
 *  - "hmatomic_double_flush":  entry line flushed twice before the
 *                              fence (redundant flush);
 *  - "hmatomic_flush_empty":   CLF on a never-written scratch line
 *                              (flush nothing);
 *  - "hmatomic_bucket_before_entry": bucket head persisted before the
 *                              entry (no order guarantee).
 */

#ifndef PMDB_WORKLOADS_HASHMAP_ATOMIC_HH
#define PMDB_WORKLOADS_HASHMAP_ATOMIC_HH

#include <cstdint>
#include <optional>

#include "core/cross_failure.hh"
#include "pmdk/pool.hh"
#include "pmdk/tx.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Persistent atomic hashmap. */
class PersistentHashmapAtomic
{
  public:
    /** One entry, sized to fit a single cache line. */
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t value;
        Addr next;
        std::uint64_t pad[5];
    };
    static_assert(sizeof(Entry) == 64, "entry must fill one cache line");

    struct Meta
    {
        Addr buckets;
        std::uint64_t nBuckets;
        std::uint64_t count;
        /** Scratch line used by the flush-nothing injection. */
        std::uint64_t scratch[8];
    };

    PersistentHashmapAtomic(PmemPool &pool, const FaultSet &faults,
                            PmTestDetector *pmtest = nullptr,
                            std::uint64_t n_buckets = 4096);

    void insert(std::uint64_t key, std::uint64_t value);

    /** Remove @p key (strict unlink + persist); true if present. */
    bool remove(std::uint64_t key);

    std::optional<std::uint64_t> lookup(std::uint64_t key) const;

    std::uint64_t count() const;

    /** Address of the root metadata object. */
    Addr metaAddr() const { return meta_; }

  private:
    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    Addr meta_;
    std::uint64_t nBuckets_;
};

/** The hashmap_atomic workload of Table 4. */
class HashmapAtomicWorkload : public Workload
{
  public:
    const char *name() const override { return "hashmap_atomic"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Epoch;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;

    std::string
    orderSpecText() const override
    {
        // The per-op published entry must persist before the bucket
        // head that points at it.
        return "persist_before hashmap_atomic.pending_entry "
               "hashmap_atomic.pending_bucket\n";
    }
};

/**
 * Value crashsim-verified runs store for @p key. Tagging values with a
 * key-derived checksum (never zero) lets the recovery verifier tell a
 * fully persisted entry from a torn or never-flushed one.
 */
std::uint64_t hashmapAtomicTaggedValue(std::uint64_t key);

/**
 * Self-contained recovery verifier for crash-state exploration: walks
 * every bucket chain in the crash image and requires each reachable
 * entry to be intact (in bounds, value matching its key's tag). The
 * element count is deliberately not checked — the count update is its
 * own durable step after publication, so recovery tolerates a stale
 * count but never a dangling or torn entry.
 */
CrossFailureChecker::Verifier
hashmapAtomicRecoveryVerifier(Addr meta_addr);

} // namespace pmdb

#endif // PMDB_WORKLOADS_HASHMAP_ATOMIC_HH
