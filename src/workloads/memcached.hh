/**
 * @file
 * memcached: model of Lenovo's memcached-pmem (Table 4's strict-model
 * real workload).
 *
 * Like memcached-pmem, the item store lives in persistent memory while
 * the hash index and LRU list are volatile (rebuilt on restart); items
 * are persisted with strict store→CLWB→SFENCE sequences. The cache is
 * sharded with per-shard locks, so the native (uninstrumented) run
 * scales with threads while any attached detector serializes the event
 * stream — which is exactly the effect behind Figure 10: the slowdown
 * of a bookkeeping-heavy detector grows almost linearly with thread
 * count, while PMDebugger's grows much more slowly.
 *
 * The driver models memslap: a get/set mix (5% sets by default) over a
 * zipfian key popularity distribution.
 *
 * The 19 new memcached bugs PMDebugger found (Section 7.4) are
 * reproduced as fault-injection points "mc_bug_1" .. "mc_bug_19";
 * "mc_real_bugs" enables all of them at once (the as-shipped buggy
 * code). Bug 1 is Figure 9a verbatim: ITEM_set_cas writes the item's
 * CAS id on link without persisting it.
 */

#ifndef PMDB_WORKLOADS_MEMCACHED_HH
#define PMDB_WORKLOADS_MEMCACHED_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pmdk/pool.hh"
#include "workloads/workload.hh"

namespace pmdb
{

/** Miniature memcached-pmem with a persistent item store. */
class MiniMemcached
{
  public:
    static constexpr std::size_t valueBytes = 64;
    static constexpr std::size_t shardCount = 16;

    /** Persistent item layout (two cache lines). */
    struct Item
    {
        std::uint64_t hash;    // 0
        std::uint64_t cas;     // 8
        std::uint32_t flags;   // 16
        std::uint32_t valLen;  // 20
        std::uint64_t key;     // 24
        std::uint32_t exptime; // 32
        std::uint32_t fetched; // 36
        std::uint64_t pad[3];  // 40..63
        std::uint8_t value[valueBytes]; // 64..127
    };
    static_assert(sizeof(Item) == 128, "item must span two cache lines");

    /**
     * Per-shard persistent statistics. Each field has its own cache
     * line (as memcached pads its stats to avoid false sharing), so
     * persisting one field never incidentally writes back another.
     */
    struct ShardStats
    {
        std::uint64_t casId;      // line 0
        std::uint64_t pad0[7];
        std::uint64_t totalItems; // line 1
        std::uint64_t pad1[7];
        std::uint64_t currItems;  // line 2
        std::uint64_t pad2[7];
        std::uint64_t commitFlag; // line 3
        std::uint64_t pad3[7];
        std::uint64_t scratch[8]; // line 4
    };
    static_assert(sizeof(ShardStats) == 320,
                  "each stats field must own a full cache line");

    MiniMemcached(PmemPool &pool, const FaultSet &faults,
                  PmTestDetector *pmtest = nullptr,
                  std::size_t capacity = 1 << 20);

    /** Store @p key with a value derived from @p payload. */
    void set(std::uint64_t key, std::uint64_t payload,
             ThreadId thread = 0);

    /** Fetch @p key; returns true on hit. */
    bool get(std::uint64_t key, ThreadId thread = 0);

    /** DELETE @p key: tombstone + retire; true if it was present. */
    bool del(std::uint64_t key, ThreadId thread = 0);

    std::uint64_t currItems() const;
    std::uint64_t casId() const;

    /** Number of evictions performed so far. */
    std::uint64_t evictions() const;

  private:
    struct Shard
    {
        std::unordered_map<std::uint64_t, Addr> index;
        std::list<std::uint64_t> lru; // front = most recent
        std::unordered_map<std::uint64_t,
                           std::list<std::uint64_t>::iterator>
            lruPos;
        Addr stats = 0;
        std::uint64_t evictions = 0;
        /** Retired item kept for the stale-flush bug (bug 11). */
        Addr staleItem = 0;
        std::mutex lock;
    };

    bool bug(int n) const;
    Shard &shardFor(std::uint64_t key);
    void setNew(Shard &shard, std::uint64_t key, std::uint64_t payload,
                ThreadId thread);
    void setExisting(Shard &shard, Addr item, std::uint64_t payload,
                     ThreadId thread);
    void evictOne(Shard &shard, ThreadId thread);
    void persistStat(Addr field_addr, std::uint64_t value, bool flush,
                     ThreadId thread);

    PmemPool &pool_;
    const FaultSet &faults_;
    PmTestDetector *pmtest_;
    std::size_t perShardCapacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/** The memcached workload of Table 4 (memslap driver). */
class MemcachedWorkload : public Workload
{
  public:
    const char *name() const override { return "memcached"; }

    PersistencyModel model() const override
    {
        return PersistencyModel::Strict;
    }

    void run(PmRuntime &runtime, const WorkloadOptions &options) override;

    std::string
    orderSpecText() const override
    {
        return "persist_before memcached.pending_item "
               "memcached.commit_flag\n";
    }
};

} // namespace pmdb

#endif // PMDB_WORKLOADS_MEMCACHED_HH
