/**
 * @file
 * Always-on, low-overhead metrics substrate for the whole pipeline:
 * counters, gauges, and fixed-bucket latency histograms collected in a
 * process-global registry, snapshotted on demand as JSON or Prometheus
 * text.
 *
 * Design constraints (DESIGN.md §14):
 *
 *  - **Hot-path cost.** Counter::add is one relaxed fetch_add on a
 *    thread-striped cache line (no locks, no false sharing between
 *    producer threads); Histogram::record is a log2 bucket index plus
 *    two relaxed adds. Call sites additionally gate on
 *    telemetry::enabled() — a single relaxed bool load — so disabling
 *    telemetry reduces the instrumentation to a predictable branch.
 *    bench/telemetry_bench holds the dispatch-path cost of the enabled
 *    substrate under 2% (BENCH_telemetry.json).
 *
 *  - **Deterministic merge.** Histograms are fixed log2 buckets;
 *    merging per-thread / per-shard / per-session histograms is
 *    bucket-wise addition — commutative and associative — so merged
 *    buckets and every derived quantile are bit-identical regardless
 *    of merge order (tests/test_telemetry.cc asserts this, mirroring
 *    the 1-vs-4-shard report-identity pattern).
 *
 *  - **Snapshot identity.** A MetricsSnapshot serializes to JSON and
 *    parses back to an equal snapshot (round-trip asserted in tests),
 *    so pmdb_stat and pmdbd --json can never drift from the registry:
 *    both render the same snapshot structure.
 *
 * Metric names are dotted paths with optional Prometheus-style labels
 * embedded in the name ("pmdbd.shard.events{shard=\"0\"}"); the
 * Prometheus renderer translates dots to underscores and keeps the
 * label set.
 */

#ifndef PMDB_TELEMETRY_METRICS_HH
#define PMDB_TELEMETRY_METRICS_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmdb
{
namespace telemetry
{

/**
 * Global telemetry switch. Defaults to on; the PMDB_TELEMETRY
 * environment variable ("0"/"off"/"false" to disable) sets the initial
 * value, and setEnabled() flips it at runtime (telemetry_bench measures
 * both sides). Call sites read it with one relaxed load.
 */
bool enabled();
void setEnabled(bool on);

/** Monotonic nanoseconds (CLOCK_MONOTONIC). Comparable across
 *  processes on the same host — the ring-residency stamp relies on
 *  that. */
std::uint64_t nowNs();

/** Stripes per counter; a power of two. */
constexpr std::size_t counterStripes = 16;

/**
 * Monotonic counter, striped across cache lines by thread so
 * concurrent producers (pollers, shard workers, client threads) never
 * contend on one line. value() sums the stripes.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        cells_[stripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const Cell &cell : cells_)
            total += cell.v.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset()
    {
        for (Cell &cell : cells_)
            cell.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Cell
    {
        std::atomic<std::uint64_t> v{0};
    };

    /**
     * Stable per-thread stripe, assigned on first use. The slot is
     * constant-initialized to an out-of-range sentinel so the hot
     * path is a guard-free TLS read plus one branch; only a thread's
     * first add takes the assignment path.
     */
    static std::size_t
    stripeIndex()
    {
        thread_local std::size_t slot = counterStripes;
        std::size_t s = slot;
        if (s >= counterStripes) [[unlikely]]
            slot = s = nextStripe();
        return s;
    }

    static std::size_t nextStripe();

    std::array<Cell, counterStripes> cells_;
};

/** Point-in-time signed value (queue depth, active sessions). */
class Gauge
{
  public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/** Fixed bucket count shared by every histogram (merge compatibility). */
constexpr std::size_t histogramBuckets = 40;

/**
 * Bucket index for @p v: 0 holds zero, bucket b >= 1 holds
 * [2^(b-1), 2^b), saturating at the top bucket. With 40 buckets the
 * top covers everything >= 2^38 ns ≈ 4.6 min — ample for latencies,
 * and batch-size distributions fit comfortably too.
 */
inline std::size_t
histogramBucketOf(std::uint64_t v)
{
    if (v == 0)
        return 0;
    return std::min<std::size_t>(histogramBuckets - 1,
                                 std::bit_width(v));
}

/** Inclusive upper bound used as bucket b's representative value. */
inline std::uint64_t
histogramBucketBound(std::size_t b)
{
    if (b == 0)
        return 0;
    return 1ull << b;
}

/** Immutable histogram contents: the unit of merging and reporting. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, histogramBuckets> buckets{};

    /** Bucket-wise addition: commutative, associative, deterministic. */
    void
    merge(const HistogramSnapshot &other)
    {
        count += other.count;
        sum += other.sum;
        for (std::size_t i = 0; i < histogramBuckets; ++i)
            buckets[i] += other.buckets[i];
    }

    /**
     * Deterministic quantile estimate: the representative (upper
     * bound) of the first bucket whose cumulative count reaches
     * ceil(q * count). Derived from buckets alone, so any merge order
     * yields the same answer.
     */
    std::uint64_t quantile(double q) const;

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }

    bool
    operator==(const HistogramSnapshot &other) const
    {
        return count == other.count && sum == other.sum &&
               buckets == other.buckets;
    }
};

/** Fixed-bucket latency/size histogram with relaxed atomic buckets. */
class Histogram
{
  public:
    void
    record(std::uint64_t v)
    {
        buckets_[histogramBucketOf(v)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    /** Fold a locally-accumulated delta in with one atomic add per
     *  non-empty bucket — the spill half of thread-local batching on
     *  paths where even one record() per call is too hot. */
    void
    recordBulk(const HistogramSnapshot &delta)
    {
        for (std::size_t i = 0; i < histogramBuckets; ++i)
            if (delta.buckets[i])
                buckets_[i].fetch_add(delta.buckets[i],
                                      std::memory_order_relaxed);
        count_.fetch_add(delta.count, std::memory_order_relaxed);
        sum_.fetch_add(delta.sum, std::memory_order_relaxed);
    }

    HistogramSnapshot
    snapshot() const
    {
        HistogramSnapshot snap;
        snap.count = count_.load(std::memory_order_relaxed);
        snap.sum = sum_.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < histogramBuckets; ++i)
            snap.buckets[i] =
                buckets_[i].load(std::memory_order_relaxed);
        return snap;
    }

    void
    reset()
    {
        for (auto &bucket : buckets_)
            bucket.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, histogramBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/** One named metric inside a snapshot. */
struct MetricSample
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    std::string name;
    Kind kind = Kind::Counter;
    /** Counter/Gauge value (counters are non-negative). */
    std::int64_t value = 0;
    /** Histogram contents (Kind::Histogram only). */
    HistogramSnapshot hist;

    bool
    operator==(const MetricSample &other) const
    {
        return name == other.name && kind == other.kind &&
               value == other.value && hist == other.hist;
    }
};

/**
 * A point-in-time copy of a metric set, sorted by name. This is the
 * single structure every output renders: the metrics endpoint, pmdbd
 * --json, and pmdb_stat all consume the same snapshot, so their views
 * cannot drift.
 */
struct MetricsSnapshot
{
    /** Snapshot wire-format version (the "schema" JSON field). */
    static constexpr int schemaVersion = 1;

    std::vector<MetricSample> samples;

    void addCounter(std::string name, std::uint64_t value);
    void addGauge(std::string name, std::int64_t value);
    void addHistogram(std::string name, HistogramSnapshot hist);

    /** Samples must be name-sorted before rendering or comparing. */
    void sortByName();

    /** Merge @p other's samples (same-name histograms merge bucket-
     *  wise, counters/gauges add); used to fold dynamic daemon state
     *  into the registry snapshot. */
    void merge(const MetricsSnapshot &other);

    const MetricSample *find(const std::string &name) const;

    std::string toJson() const;
    std::string toPrometheus() const;

    /**
     * Parse the toJson() format back into a snapshot. Strict about the
     * shape this file writes; returns false with @p error filled on
     * malformed input. Round-trip identity (parse(toJson()) == *this)
     * is asserted in tests.
     */
    static bool fromJson(const std::string &text, MetricsSnapshot *out,
                         std::string *error = nullptr);

    bool
    operator==(const MetricsSnapshot &other) const
    {
        return samples == other.samples;
    }
};

/**
 * Process-global metric registry. Lookup interns the name under a
 * mutex and returns a stable reference — call sites resolve their
 * metrics once (static or member) and touch only the lock-free metric
 * on the hot path.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Name-sorted copy of every registered metric. */
    MetricsSnapshot snapshot() const;

    /** Zero every metric (tests and benchmarks only — references stay
     *  valid). */
    void resetForTest();

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace telemetry
} // namespace pmdb

#endif // PMDB_TELEMETRY_METRICS_HH
