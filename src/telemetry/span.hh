/**
 * @file
 * Pipeline span tracing: named, timestamped intervals recorded into a
 * bounded in-process buffer and exported as Chrome/Perfetto
 * trace-event JSON ("X" complete events, ts/dur in microseconds).
 *
 * Spans are off by default (metrics are the always-on layer); pmdbd
 * --trace-out and pmdb_run --trace-out enable them for a run and write
 * the trace at exit. Each span carries a track id — the session id on
 * the daemon, the thread on a client — so Perfetto lays the pipeline
 * stages (client publish → ring residency → poller drain → shard
 * queue wait → rule evaluation → verdict) out as per-session rows.
 */

#ifndef PMDB_TELEMETRY_SPAN_HH
#define PMDB_TELEMETRY_SPAN_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "metrics.hh"

namespace pmdb
{
namespace telemetry
{

/** Span recording switch, independent of the metrics switch. */
bool spansEnabled();
void setSpansEnabled(bool on);

/** One completed interval on a track. */
struct Span
{
    /** Stage name ("ring.residency", "shard.rule_eval", ...). */
    std::string name;
    /** Trace-event category ("client", "pmdbd", "detector"). */
    std::string category;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    /** Perfetto row: session id on the daemon, thread id on a client. */
    std::uint64_t track = 0;
    /** Optional single argument rendered into the event's "args"
     *  ("events=512"). */
    std::string arg;
};

/**
 * Bounded global span sink. When full the oldest spans are dropped
 * (and counted) — tracing a long run keeps the tail, which is the part
 * being inspected.
 */
class SpanBuffer
{
  public:
    static SpanBuffer &global();

    void record(Span span);

    /** Copy out the buffered spans (test + export path). */
    std::deque<Span> drain();

    std::uint64_t dropped() const;

    void setCapacity(std::size_t capacity);

    /** Render the buffer as Chrome trace-event JSON. */
    std::string toChromeTrace();

    /** Write toChromeTrace() to @p path; false on I/O failure. */
    bool writeChromeTrace(const std::string &path);

  private:
    SpanBuffer() = default;

    mutable std::mutex mutex_;
    std::deque<Span> spans_;
    std::size_t capacity_ = 65536;
    std::uint64_t dropped_ = 0;
};

/** RAII span: times construction → destruction onto the buffer. */
class SpanTimer
{
  public:
    SpanTimer(const char *name, const char *category,
              std::uint64_t track, std::string arg = std::string())
        : active_(spansEnabled())
    {
        if (!active_)
            return;
        span_.name = name;
        span_.category = category;
        span_.track = track;
        span_.arg = std::move(arg);
        span_.startNs = nowNs();
    }

    ~SpanTimer()
    {
        if (!active_)
            return;
        span_.durNs = nowNs() - span_.startNs;
        SpanBuffer::global().record(std::move(span_));
    }

    SpanTimer(const SpanTimer &) = delete;
    SpanTimer &operator=(const SpanTimer &) = delete;

  private:
    bool active_;
    Span span_;
};

} // namespace telemetry
} // namespace pmdb

#endif // PMDB_TELEMETRY_SPAN_HH
