#include "metrics.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace pmdb
{
namespace telemetry
{

namespace
{

bool
envDisabled()
{
    const char *env = std::getenv("PMDB_TELEMETRY");
    if (!env)
        return false;
    return !std::strcmp(env, "0") || !std::strcmp(env, "off") ||
           !std::strcmp(env, "false");
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{!envDisabled()};
    return flag;
}

} // namespace

bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::size_t
Counter::nextStripe()
{
    static std::atomic<std::size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) %
           counterStripes;
}

std::uint64_t
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Integer rank avoids float accumulation: the smallest rank r with
    // r >= q * count, at least 1.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count));
    if (static_cast<double>(rank) < q * static_cast<double>(count))
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < histogramBuckets; ++b)
    {
        cumulative += buckets[b];
        if (cumulative >= rank)
            return histogramBucketBound(b);
    }
    return histogramBucketBound(histogramBuckets - 1);
}

void
MetricsSnapshot::addCounter(std::string name, std::uint64_t value)
{
    MetricSample sample;
    sample.name = std::move(name);
    sample.kind = MetricSample::Kind::Counter;
    sample.value = static_cast<std::int64_t>(value);
    samples.push_back(std::move(sample));
}

void
MetricsSnapshot::addGauge(std::string name, std::int64_t value)
{
    MetricSample sample;
    sample.name = std::move(name);
    sample.kind = MetricSample::Kind::Gauge;
    sample.value = value;
    samples.push_back(std::move(sample));
}

void
MetricsSnapshot::addHistogram(std::string name, HistogramSnapshot hist)
{
    MetricSample sample;
    sample.name = std::move(name);
    sample.kind = MetricSample::Kind::Histogram;
    sample.hist = hist;
    samples.push_back(std::move(sample));
}

void
MetricsSnapshot::sortByName()
{
    std::sort(samples.begin(), samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const MetricSample &incoming : other.samples)
    {
        MetricSample *mine = nullptr;
        for (MetricSample &candidate : samples)
            if (candidate.name == incoming.name &&
                candidate.kind == incoming.kind)
            {
                mine = &candidate;
                break;
            }
        if (!mine)
        {
            samples.push_back(incoming);
            continue;
        }
        if (incoming.kind == MetricSample::Kind::Histogram)
            mine->hist.merge(incoming.hist);
        else
            mine->value += incoming.value;
    }
    sortByName();
}

const MetricSample *
MetricsSnapshot::find(const std::string &name) const
{
    for (const MetricSample &sample : samples)
        if (sample.name == name)
            return &sample;
    return nullptr;
}

namespace
{

void
appendJsonString(std::ostringstream &out, const std::string &s)
{
    out << '"';
    for (char c : s)
    {
        switch (c)
        {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        default:
            out << c;
            break;
        }
    }
    out << '"';
}

const char *
kindName(MetricSample::Kind kind)
{
    switch (kind)
    {
    case MetricSample::Kind::Counter:
        return "counter";
    case MetricSample::Kind::Gauge:
        return "gauge";
    case MetricSample::Kind::Histogram:
        return "histogram";
    }
    return "counter";
}

/**
 * Split "name{label=\"v\"}" into the bare name and the label block;
 * the Prometheus renderer keeps them separate so the underscore
 * translation never touches label values.
 */
void
splitLabels(const std::string &name, std::string *bare,
            std::string *labels)
{
    std::size_t brace = name.find('{');
    if (brace == std::string::npos)
    {
        *bare = name;
        labels->clear();
        return;
    }
    *bare = name.substr(0, brace);
    *labels = name.substr(brace);
    if (!labels->empty() && labels->back() == '}')
        labels->pop_back();
    if (!labels->empty() && labels->front() == '{')
        labels->erase(labels->begin());
}

std::string
promName(const std::string &bare)
{
    std::string out = "pmdb_";
    for (char c : bare)
    {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
        else
            out.push_back('_');
    }
    return out;
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream out;
    out << "{\"schema\": " << schemaVersion << ", \"metrics\": [";
    bool firstSample = true;
    for (const MetricSample &sample : samples)
    {
        if (!firstSample)
            out << ", ";
        firstSample = false;
        out << "{\"name\": ";
        appendJsonString(out, sample.name);
        out << ", \"type\": \"" << kindName(sample.kind) << "\"";
        if (sample.kind == MetricSample::Kind::Histogram)
        {
            out << ", \"count\": " << sample.hist.count
                << ", \"sum\": " << sample.hist.sum << ", \"buckets\": [";
            for (std::size_t b = 0; b < histogramBuckets; ++b)
            {
                if (b)
                    out << ", ";
                out << sample.hist.buckets[b];
            }
            out << "]";
        }
        else
        {
            out << ", \"value\": " << sample.value;
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}

std::string
MetricsSnapshot::toPrometheus() const
{
    std::ostringstream out;
    std::string lastTyped;
    for (const MetricSample &sample : samples)
    {
        std::string bare, labels;
        splitLabels(sample.name, &bare, &labels);
        const std::string name = promName(bare);
        if (sample.kind == MetricSample::Kind::Histogram)
        {
            if (lastTyped != name)
            {
                out << "# TYPE " << name << " histogram\n";
                lastTyped = name;
            }
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < histogramBuckets; ++b)
            {
                cumulative += sample.hist.buckets[b];
                if (sample.hist.buckets[b] == 0 &&
                    b + 1 < histogramBuckets)
                    continue;
                out << name << "_bucket{";
                if (!labels.empty())
                    out << labels << ",";
                if (b + 1 < histogramBuckets)
                    out << "le=\"" << histogramBucketBound(b) << "\"}";
                else
                    out << "le=\"+Inf\"}";
                out << " " << cumulative << "\n";
            }
            out << name << "_sum";
            if (!labels.empty())
                out << "{" << labels << "}";
            out << " " << sample.hist.sum << "\n";
            out << name << "_count";
            if (!labels.empty())
                out << "{" << labels << "}";
            out << " " << sample.hist.count << "\n";
        }
        else
        {
            if (lastTyped != name)
            {
                out << "# TYPE " << name << " "
                    << (sample.kind == MetricSample::Kind::Gauge
                            ? "gauge"
                            : "counter")
                    << "\n";
                lastTyped = name;
            }
            out << name;
            if (!labels.empty())
                out << "{" << labels << "}";
            out << " " << sample.value << "\n";
        }
    }
    return out.str();
}

namespace
{

/**
 * Minimal recursive-descent parser for exactly the JSON this file
 * emits (objects, arrays, strings with the escapes we write, and
 * integers). Not a general JSON library — pmdb_stat links only
 * pmdb_telemetry and must parse daemon snapshots without one.
 */
struct JsonCursor
{
    const char *p;
    const char *end;
    std::string error;

    explicit JsonCursor(const std::string &text)
        : p(text.data()), end(text.data() + text.size())
    {
    }

    void
    skipSpace()
    {
        while (p < end &&
               std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool
    fail(const std::string &message)
    {
        if (error.empty())
            error = message;
        return false;
    }

    bool
    expect(char c)
    {
        skipSpace();
        if (p >= end || *p != c)
            return fail(std::string("expected '") + c + "'");
        ++p;
        return true;
    }

    bool
    peek(char c)
    {
        skipSpace();
        return p < end && *p == c;
    }

    bool
    parseString(std::string *out)
    {
        if (!expect('"'))
            return false;
        out->clear();
        while (p < end && *p != '"')
        {
            if (*p == '\\' && p + 1 < end)
            {
                ++p;
                switch (*p)
                {
                case 'n':
                    out->push_back('\n');
                    break;
                default:
                    out->push_back(*p);
                    break;
                }
            }
            else
            {
                out->push_back(*p);
            }
            ++p;
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;
        return true;
    }

    bool
    parseInt(std::int64_t *out)
    {
        skipSpace();
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end && std::isdigit(static_cast<unsigned char>(*p)))
            ++p;
        if (p == start)
            return fail("expected integer");
        *out = std::strtoll(std::string(start, p).c_str(), nullptr, 10);
        return true;
    }
};

} // namespace

bool
MetricsSnapshot::fromJson(const std::string &text, MetricsSnapshot *out,
                          std::string *error)
{
    MetricsSnapshot parsed;
    JsonCursor cur(text);
    auto bail = [&](const std::string &message) {
        if (error)
            *error = cur.error.empty() ? message : cur.error;
        return false;
    };

    if (!cur.expect('{'))
        return bail("not an object");
    bool sawMetrics = false;
    while (true)
    {
        std::string key;
        if (!cur.parseString(&key))
            return bail("bad key");
        if (!cur.expect(':'))
            return bail("missing ':'");
        if (key == "schema")
        {
            std::int64_t version = 0;
            if (!cur.parseInt(&version))
                return bail("bad schema");
            if (version != schemaVersion)
                return bail("unsupported snapshot schema version");
        }
        else if (key == "metrics")
        {
            sawMetrics = true;
            if (!cur.expect('['))
                return bail("metrics not an array");
            while (!cur.peek(']'))
            {
                if (!cur.expect('{'))
                    return bail("metric not an object");
                MetricSample sample;
                std::string type = "counter";
                while (true)
                {
                    std::string field;
                    if (!cur.parseString(&field))
                        return bail("bad metric field");
                    if (!cur.expect(':'))
                        return bail("missing ':'");
                    if (field == "name")
                    {
                        if (!cur.parseString(&sample.name))
                            return bail("bad name");
                    }
                    else if (field == "type")
                    {
                        if (!cur.parseString(&type))
                            return bail("bad type");
                    }
                    else if (field == "value")
                    {
                        if (!cur.parseInt(&sample.value))
                            return bail("bad value");
                    }
                    else if (field == "count")
                    {
                        std::int64_t v = 0;
                        if (!cur.parseInt(&v))
                            return bail("bad count");
                        sample.hist.count =
                            static_cast<std::uint64_t>(v);
                    }
                    else if (field == "sum")
                    {
                        std::int64_t v = 0;
                        if (!cur.parseInt(&v))
                            return bail("bad sum");
                        sample.hist.sum = static_cast<std::uint64_t>(v);
                    }
                    else if (field == "buckets")
                    {
                        if (!cur.expect('['))
                            return bail("buckets not an array");
                        std::size_t b = 0;
                        while (!cur.peek(']'))
                        {
                            std::int64_t v = 0;
                            if (!cur.parseInt(&v))
                                return bail("bad bucket");
                            if (b >= histogramBuckets)
                                return bail("too many buckets");
                            sample.hist.buckets[b++] =
                                static_cast<std::uint64_t>(v);
                            if (cur.peek(','))
                                cur.expect(',');
                        }
                        cur.expect(']');
                        if (b != histogramBuckets)
                            return bail("bucket count mismatch");
                    }
                    else
                    {
                        return bail("unknown metric field " + field);
                    }
                    if (cur.peek(','))
                    {
                        cur.expect(',');
                        continue;
                    }
                    break;
                }
                if (!cur.expect('}'))
                    return bail("unterminated metric");
                if (type == "counter")
                    sample.kind = MetricSample::Kind::Counter;
                else if (type == "gauge")
                    sample.kind = MetricSample::Kind::Gauge;
                else if (type == "histogram")
                    sample.kind = MetricSample::Kind::Histogram;
                else
                    return bail("unknown metric type " + type);
                parsed.samples.push_back(std::move(sample));
                if (cur.peek(','))
                    cur.expect(',');
            }
            cur.expect(']');
        }
        else
        {
            return bail("unknown snapshot key " + key);
        }
        if (cur.peek(','))
        {
            cur.expect(',');
            continue;
        }
        break;
    }
    if (!cur.expect('}'))
        return bail("unterminated object");
    if (!sawMetrics)
        return bail("missing metrics array");
    *out = std::move(parsed);
    return true;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Counter> &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter());
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Gauge> &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge());
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Histogram> &slot = histograms_[name];
    if (!slot)
        slot.reset(new Histogram());
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &entry : counters_)
        snap.addCounter(entry.first, entry.second->value());
    for (const auto &entry : gauges_)
        snap.addGauge(entry.first, entry.second->value());
    for (const auto &entry : histograms_)
        snap.addHistogram(entry.first, entry.second->snapshot());
    snap.sortByName();
    return snap;
}

void
Registry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : counters_)
        entry.second->reset();
    for (auto &entry : gauges_)
        entry.second->set(0);
    for (auto &entry : histograms_)
        entry.second->reset();
}

} // namespace telemetry
} // namespace pmdb
