#include "span.hh"

#include <atomic>
#include <cstdio>
#include <sstream>

namespace pmdb
{
namespace telemetry
{

namespace
{

std::atomic<bool> &
spanFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

} // namespace

bool
spansEnabled()
{
    return spanFlag().load(std::memory_order_relaxed);
}

void
setSpansEnabled(bool on)
{
    spanFlag().store(on, std::memory_order_relaxed);
}

SpanBuffer &
SpanBuffer::global()
{
    static SpanBuffer instance;
    return instance;
}

void
SpanBuffer::record(Span span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (spans_.size() >= capacity_)
    {
        spans_.pop_front();
        ++dropped_;
    }
    spans_.push_back(std::move(span));
}

std::deque<Span>
SpanBuffer::drain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::deque<Span> out;
    out.swap(spans_);
    return out;
}

std::uint64_t
SpanBuffer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
SpanBuffer::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity ? capacity : 1;
    while (spans_.size() > capacity_)
    {
        spans_.pop_front();
        ++dropped_;
    }
}

namespace
{

void
appendEscaped(std::ostringstream &out, const std::string &s)
{
    for (char c : s)
    {
        if (c == '"' || c == '\\')
            out << '\\';
        out << c;
    }
}

} // namespace

std::string
SpanBuffer::toChromeTrace()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\"traceEvents\": [";
    bool first = true;
    for (const Span &span : spans_)
    {
        if (!first)
            out << ",\n";
        first = false;
        out << "{\"name\": \"";
        appendEscaped(out, span.name);
        out << "\", \"cat\": \"";
        appendEscaped(out, span.category);
        out << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << span.track
            << ", \"ts\": " << span.startNs / 1000 << "."
            << span.startNs % 1000 / 100
            << ", \"dur\": " << span.durNs / 1000 << "."
            << span.durNs % 1000 / 100;
        if (!span.arg.empty())
        {
            out << ", \"args\": {\"detail\": \"";
            appendEscaped(out, span.arg);
            out << "\"}";
        }
        out << "}";
    }
    out << "],\n\"displayTimeUnit\": \"ms\", \"otherData\": "
           "{\"dropped_spans\": "
        << dropped_ << "}}";
    return out.str();
}

bool
SpanBuffer::writeChromeTrace(const std::string &path)
{
    const std::string text = toChromeTrace();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace telemetry
} // namespace pmdb
