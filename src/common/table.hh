/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Every bench
 * binary prints the same rows/series the paper's tables and figures
 * report; TextTable keeps that output aligned and diffable.
 */

#ifndef PMDB_COMMON_TABLE_HH
#define PMDB_COMMON_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pmdb
{

/**
 * Column-aligned text table. Add a header row, then data rows; render()
 * pads each column to its widest cell.
 */
class TextTable
{
  public:
    /** Set (or replace) the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Render the full table with a separator under the header. */
    std::string render() const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals fraction digits. */
std::string fmtDouble(double v, int decimals = 2);

/** Format as "12.3x" slowdown/speedup factor. */
std::string fmtFactor(double v, int decimals = 1);

/** Format as "12.3%" percentage. */
std::string fmtPercent(double v, int decimals = 1);

/** Format an integer with thousands separators ("1,234,567"). */
std::string fmtCount(std::uint64_t v);

} // namespace pmdb

#endif // PMDB_COMMON_TABLE_HH
