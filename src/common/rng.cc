#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace pmdb
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    // Seed the four xoshiro words from splitmix64, per the reference
    // implementation's recommendation; guards against the all-zero state.
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    if (!(state_[0] | state_[1] | state_[2] | state_[3]))
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Multiply-shift range reduction; bias is negligible for our uses.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t item_count, double theta,
                                   std::uint64_t seed)
    : items_(item_count), theta_(theta), rng_(seed)
{
    if (items_ == 0)
        fatal("ZipfianGenerator requires a non-empty item space");
    zetan_ = zeta(items_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta) const
{
    // Exact up to a cap, then the Euler-Maclaurin tail approximation so
    // constructing a generator over 10^8 keys stays cheap.
    constexpr std::uint64_t exactCap = 1'000'000;
    double sum = 0.0;
    const std::uint64_t exact_n = std::min(n, exactCap);
    for (std::uint64_t i = 1; i <= exact_n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (n > exactCap) {
        const double a = static_cast<double>(exactCap);
        const double b = static_cast<double>(n);
        sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
               (1.0 - theta);
    }
    return sum;
}

std::uint64_t
ZipfianGenerator::next()
{
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double frac =
        static_cast<double>(items_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    auto idx = static_cast<std::uint64_t>(frac);
    return idx >= items_ ? items_ - 1 : idx;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(
    std::uint64_t item_count, std::uint64_t seed)
    : zipf_(item_count, 0.99, seed), items_(item_count)
{
}

std::uint64_t
ScrambledZipfianGenerator::next()
{
    return mix64(zipf_.next()) % items_;
}

} // namespace pmdb
