/**
 * @file
 * Wall-clock timing helper used by the benchmark harnesses.
 */

#ifndef PMDB_COMMON_STOPWATCH_HH
#define PMDB_COMMON_STOPWATCH_HH

#include <chrono>

namespace pmdb
{

/** Simple wall-clock stopwatch (steady clock). */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed since construction or the last reset(). */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace pmdb

#endif // PMDB_COMMON_STOPWATCH_HH
