/**
 * @file
 * Deterministic random-number generation for workloads and benchmarks.
 *
 * All randomness in this project flows through Rng (xoshiro256**) so that
 * every experiment is reproducible from a seed. ZipfianGenerator provides
 * the skewed key distribution used by the YCSB workload generator.
 */

#ifndef PMDB_COMMON_RNG_HH
#define PMDB_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace pmdb
{

/**
 * xoshiro256** PRNG. Small, fast, and deterministic across platforms,
 * unlike std::default_random_engine.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipfian-distributed integer generator over [0, itemCount), using the
 * Gray/Jim-Gray rejection-free method popularised by the YCSB core
 * workload generator. theta defaults to YCSB's 0.99.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t item_count, double theta = 0.99,
                     std::uint64_t seed = 12345);

    std::uint64_t next();

    std::uint64_t itemCount() const { return items_; }

  private:
    double zeta(std::uint64_t n, double theta) const;

    std::uint64_t items_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
    Rng rng_;
};

/**
 * Scrambled-zipfian: zipfian popularity spread over the whole key space
 * via hashing, as YCSB does, so hot keys are not clustered.
 */
class ScrambledZipfianGenerator
{
  public:
    ScrambledZipfianGenerator(std::uint64_t item_count,
                              std::uint64_t seed = 12345);

    std::uint64_t next();

  private:
    ZipfianGenerator zipf_;
    std::uint64_t items_;
};

/** 64-bit finalizer hash (splitmix64 mix step), used for key scrambling. */
std::uint64_t mix64(std::uint64_t x);

} // namespace pmdb

#endif // PMDB_COMMON_RNG_HH
