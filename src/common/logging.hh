/**
 * @file
 * Minimal leveled logging plus panic/fatal helpers, in the spirit of
 * gem5's base/logging.hh: panic() for internal invariant violations,
 * fatal() for unrecoverable user/configuration errors.
 */

#ifndef PMDB_COMMON_LOGGING_HH
#define PMDB_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pmdb
{

/** Severity of a log message. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
    /** Threshold-only value: suppresses every message. */
    None,
};

/**
 * Parse a log-level name ("debug", "info", "warn", "error", "none",
 * case-insensitive). Returns false (leaving @p out untouched) for
 * unknown names.
 */
bool parseLogLevel(const std::string &name, LogLevel *out);

/**
 * Global log configuration. Quiet by default so benchmarks and tests
 * are not flooded; examples turn Info on. The initial threshold comes
 * from the PMDB_LOG environment variable when set (one of the
 * parseLogLevel names), else Warn.
 */
class Logger
{
  public:
    static LogLevel &threshold();

    /**
     * Emit one line as
     * `[<seconds-since-start>s <level> <component>] <msg>` — e.g.
     * `[12.345s warn pmdbd/poller] ring full`. The timestamp is
     * monotonic seconds since the first log call of the process, so
     * interleaved daemon/client stderr can be ordered by eye.
     * @p component may be empty (plain `[12.345s warn] msg`).
     */
    static void log(LogLevel level, const std::string &msg,
                    const std::string &component = std::string());
};

/** Log at Info level. */
void inform(const std::string &msg);
/** Log at Info level with a component tag ("pmdbd/poller"). */
void inform(const std::string &component, const std::string &msg);
/** Log at Warn level. */
void warn(const std::string &msg);
/** Log at Warn level with a component tag. */
void warn(const std::string &component, const std::string &msg);
/** Log at Error level. */
void logError(const std::string &msg);
/** Log at Error level with a component tag. */
void logError(const std::string &component, const std::string &msg);

/**
 * Abort due to an internal bug: an invariant that should hold regardless
 * of input has been violated.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit due to an unrecoverable condition caused by the caller
 * (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const std::string &msg);

} // namespace pmdb

#endif // PMDB_COMMON_LOGGING_HH
