#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace pmdb
{

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<std::size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    measure(header_);
    for (const auto &row : rows_)
        measure(row);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            out << cell << std::string(width[c] - cell.size(), ' ');
            if (c + 1 < cols)
                out << "  ";
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t c = 0; c < cols; ++c)
            total += width[c] + (c + 1 < cols ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtFactor(double v, int decimals)
{
    return fmtDouble(v, decimals) + "x";
}

std::string
fmtPercent(double v, int decimals)
{
    return fmtDouble(v, decimals) + "%";
}

std::string
fmtCount(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int pos = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (pos && pos % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++pos;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace pmdb
