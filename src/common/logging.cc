#include "logging.hh"

#include <cstdio>

#include "types.hh"

namespace pmdb
{

LogLevel &
Logger::threshold()
{
    static LogLevel level = LogLevel::Warn;
    return level;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (level < threshold())
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Error: tag = "error"; break;
    }
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
inform(const std::string &msg)
{
    Logger::log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::log(LogLevel::Warn, msg);
}

void
logError(const std::string &msg)
{
    Logger::log(LogLevel::Error, msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

std::string
AddrRange::toString() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[0x%llx, 0x%llx)",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end));
    return buf;
}

} // namespace pmdb
