#include "logging.hh"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "types.hh"

namespace pmdb
{

bool
parseLogLevel(const std::string &name, LogLevel *out)
{
    std::string lower;
    lower.reserve(name.size());
    for (const char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "debug")
        *out = LogLevel::Debug;
    else if (lower == "info")
        *out = LogLevel::Info;
    else if (lower == "warn" || lower == "warning")
        *out = LogLevel::Warn;
    else if (lower == "error")
        *out = LogLevel::Error;
    else if (lower == "none" || lower == "off")
        *out = LogLevel::None;
    else
        return false;
    return true;
}

LogLevel &
Logger::threshold()
{
    static LogLevel level = [] {
        LogLevel parsed = LogLevel::Warn;
        if (const char *env = std::getenv("PMDB_LOG")) {
            if (!parseLogLevel(env, &parsed)) {
                std::fprintf(stderr,
                             "warn: PMDB_LOG: unknown level '%s' "
                             "(debug|info|warn|error|none)\n",
                             env);
            }
        }
        return parsed;
    }();
    return level;
}

namespace
{

/** Monotonic seconds since the first log line of the process. */
double
secondsSinceStart()
{
    static const std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

void
Logger::log(LogLevel level, const std::string &msg,
            const std::string &component)
{
    if (level < threshold())
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Error: tag = "error"; break;
      case LogLevel::None:  return;
    }
    if (component.empty()) {
        std::fprintf(stderr, "[%.3fs %s] %s\n", secondsSinceStart(),
                     tag, msg.c_str());
    } else {
        std::fprintf(stderr, "[%.3fs %s %s] %s\n", secondsSinceStart(),
                     tag, component.c_str(), msg.c_str());
    }
}

void
inform(const std::string &msg)
{
    Logger::log(LogLevel::Info, msg);
}

void
inform(const std::string &component, const std::string &msg)
{
    Logger::log(LogLevel::Info, msg, component);
}

void
warn(const std::string &msg)
{
    Logger::log(LogLevel::Warn, msg);
}

void
warn(const std::string &component, const std::string &msg)
{
    Logger::log(LogLevel::Warn, msg, component);
}

void
logError(const std::string &msg)
{
    Logger::log(LogLevel::Error, msg);
}

void
logError(const std::string &component, const std::string &msg)
{
    Logger::log(LogLevel::Error, msg, component);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

std::string
AddrRange::toString() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[0x%llx, 0x%llx)",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end));
    return buf;
}

} // namespace pmdb
