/**
 * @file
 * Fundamental type aliases and address-range arithmetic shared by every
 * module in the PMDebugger reproduction.
 *
 * Addresses in this project are simulated persistent-memory addresses:
 * byte offsets into a PmemDevice image. All bookkeeping structures
 * (memory-location array, CLF intervals, AVL tree) operate on
 * half-open byte ranges [addr, addr + size).
 */

#ifndef PMDB_COMMON_TYPES_HH
#define PMDB_COMMON_TYPES_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pmdb
{

/** Simulated persistent-memory address (byte offset into the device). */
using Addr = std::uint64_t;

/** Monotonic sequence number assigned to every instrumented event. */
using SeqNum = std::uint64_t;

/** Identifier of a strand section (strand persistency model). */
using StrandId = std::int32_t;

/** Identifier of an application thread issuing PM operations. */
using ThreadId = std::int32_t;

/** Size of a cache line in the simulated memory hierarchy. */
constexpr std::size_t cacheLineSize = 64;

/** Align an address down to its cache-line base. */
constexpr Addr
cacheLineBase(Addr addr)
{
    return addr & ~static_cast<Addr>(cacheLineSize - 1);
}

/** Index of the cache line containing @p addr. */
constexpr std::uint64_t
cacheLineIndex(Addr addr)
{
    return addr / cacheLineSize;
}

/**
 * Half-open byte range [start, end). The empty range is represented by
 * start == end; all query methods treat empty ranges as overlapping
 * nothing.
 */
struct AddrRange
{
    Addr start = 0;
    Addr end = 0;

    AddrRange() = default;
    AddrRange(Addr s, Addr e) : start(s), end(e) {}

    /** Build a range from a base address and byte size. */
    static AddrRange
    fromSize(Addr addr, std::size_t size)
    {
        return AddrRange(addr, addr + size);
    }

    std::size_t size() const { return static_cast<std::size_t>(end - start); }
    bool empty() const { return end <= start; }

    /** True if the ranges share at least one byte. */
    bool
    overlaps(const AddrRange &other) const
    {
        return start < other.end && other.start < end &&
               !empty() && !other.empty();
    }

    /** True if this range fully contains @p other (other may be empty). */
    bool
    contains(const AddrRange &other) const
    {
        return start <= other.start && other.end <= end;
    }

    bool contains(Addr addr) const { return start <= addr && addr < end; }

    /** Byte-wise intersection; empty if the ranges do not overlap. */
    AddrRange
    intersect(const AddrRange &other) const
    {
        Addr s = std::max(start, other.start);
        Addr e = std::min(end, other.end);
        if (s >= e)
            return AddrRange();
        return AddrRange(s, e);
    }

    /** True if the ranges touch or overlap (union would be contiguous). */
    bool
    adjacentOrOverlapping(const AddrRange &other) const
    {
        return start <= other.end && other.start <= end;
    }

    /** Smallest range covering both (caller ensures contiguity if needed). */
    AddrRange
    unionWith(const AddrRange &other) const
    {
        if (empty())
            return other;
        if (other.empty())
            return *this;
        return AddrRange(std::min(start, other.start),
                         std::max(end, other.end));
    }

    bool operator==(const AddrRange &other) const = default;

    std::string toString() const;
};

} // namespace pmdb

#endif // PMDB_COMMON_TYPES_HH
